#include "core/pipeline.h"

#include <set>

#include "cluster/lsh_clusterer.h"
#include "common/string_util.h"
#include "lsh/sharded_candidates.h"
#include "core/cardinality.h"
#include "core/constraints.h"
#include "graph/graph_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

namespace pghive {

const char* ClusteringMethodName(ClusteringMethod m) {
  switch (m) {
    case ClusteringMethod::kElsh:
      return "ELSH";
    case ClusteringMethod::kMinHash:
      return "MinHash";
  }
  return "?";
}

std::vector<std::vector<std::string>> BuildBatchLabelCorpus(
    const GraphBatch& batch) {
  // One singleton sentence per observed label-set token. The paper trains
  // Word2Vec "on the set of node and edge labels observed in the dataset to
  // ensure consistent semantic embeddings across identical label sets" —
  // the embeddings must be consistent and DISTINCT per token. Feeding
  // co-occurrence sentences instead (e.g. (src, edge, tgt) triples) would
  // pull the labels of frequently-connected types together and collapse the
  // very separation the encoding needs (§4.1: the representation "prevents
  // semantically different nodes, or edges, from being merged due to their
  // same structure").
  // Interned pass: collect the distinct label-set ids present, then insert
  // their pooled canonical tokens into a sorted set. Deduplication is by
  // token STRING (two distinct sets can join to the same token, e.g.
  // {"A&B"} vs {"A","B"}), exactly as the string-based scan did.
  const PropertyGraph& g = *batch.graph;
  const SymbolSetPool& pool = g.symbols().label_sets;
  std::vector<char> seen(pool.size(), 0);
  auto add = [&](LabelSetId ls) {
    if (ls != SymbolSetPool::kEmpty) seen[ls] = 1;
  };
  for (size_t i = batch.node_begin; i < batch.node_end; ++i) {
    add(g.node(i).label_set);
  }
  for (size_t i = batch.edge_begin; i < batch.edge_end; ++i) {
    const Edge& e = g.edge(i);
    add(e.label_set);
    add(g.node(e.source).label_set);
    add(g.node(e.target).label_set);
  }
  std::set<std::string> tokens;
  for (size_t ls = 0; ls < seen.size(); ++ls) {
    if (seen[ls]) tokens.insert(pool.token(static_cast<LabelSetId>(ls)));
  }
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(tokens.size());
  for (const auto& t : tokens) corpus.push_back({t});
  return corpus;
}

namespace {

// Distinct individual labels over a batch slice (the L of the alpha(L)
// heuristic).
size_t CountDistinctLabels(const GraphBatch& batch, ElementKind kind) {
  // Interned ids are bijective with distinct label strings, so counting
  // distinct SymbolIds over the distinct label sets present equals the old
  // distinct-string count — without touching a single string.
  const PropertyGraph& g = *batch.graph;
  const GraphSymbols& sym = g.symbols();
  std::vector<char> set_seen(sym.label_sets.size(), 0);
  std::vector<char> label_seen(sym.labels.size(), 0);
  size_t count = 0;
  auto add_set = [&](LabelSetId ls) {
    if (set_seen[ls]) return;
    set_seen[ls] = 1;
    for (SymbolId sid : sym.label_sets.ids(ls)) {
      if (!label_seen[sid]) {
        label_seen[sid] = 1;
        ++count;
      }
    }
  };
  if (kind == ElementKind::kNode) {
    for (size_t i = batch.node_begin; i < batch.node_end; ++i) {
      add_set(g.node(i).label_set);
    }
  } else {
    for (size_t i = batch.edge_begin; i < batch.edge_end; ++i) {
      add_set(g.edge(i).label_set);
    }
  }
  return count;
}

}  // namespace

PgHivePipeline::PgHivePipeline(PipelineOptions options)
    : options_(options), shard_plan_(options.feed_shards) {}

ThreadPool* PgHivePipeline::EnsurePool() const {
  if (pool_) return pool_.get();
  const int threads = ResolveThreadCount(options_.num_threads);
  // num_threads == 1 keeps the original sequential code paths: every
  // parallel helper takes its inline branch on a null pool, so no pool (and
  // no worker thread) is ever created.
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
  return pool_.get();
}

Status PgHivePipeline::ProcessBatch(const GraphBatch& batch,
                                    SchemaGraph* schema) {
  const PropertyGraph& g = *batch.graph;
  ThreadPool* pool = EnsurePool();
  StageTimings& timings = diagnostics_.timings;
  timings = StageTimings();

  // pghive.pipeline.* instruments (pointers cached once per process).
  static obs::Counter* batches_total =
      obs::MetricsRegistry::Global().GetCounter("pghive.pipeline.batches");
  static obs::Counter* nodes_processed =
      obs::MetricsRegistry::Global().GetCounter(
          "pghive.pipeline.nodes_processed");
  static obs::Counter* edges_processed =
      obs::MetricsRegistry::Global().GetCounter(
          "pghive.pipeline.edges_processed");
  static obs::Counter* node_cluster_count =
      obs::MetricsRegistry::Global().GetCounter(
          "pghive.pipeline.node_clusters");
  static obs::Counter* edge_cluster_count =
      obs::MetricsRegistry::Global().GetCounter(
          "pghive.pipeline.edge_clusters");
  batches_total->Add(1);
  nodes_processed->Add(batch.num_nodes());
  edges_processed->Add(batch.num_edges());

  obs::ScopedSpan batch_span("pipeline.batch");
  if (batch_span.recording()) {
    batch_span.AddAttr("nodes", static_cast<uint64_t>(batch.num_nodes()));
    batch_span.AddAttr("edges", static_cast<uint64_t>(batch.num_edges()));
    batch_span.AddAttr("method", ClusteringMethodName(options_.method));
  }

  // Preprocess: train the label embedder on the batch corpus, then encode.
  // Word2Vec training stays sequential on purpose: its SGD updates are
  // order-dependent, and sharding them across threads would make the
  // embeddings (and thus the clustering) depend on the thread count.
  LabelEmbedderOptions embed_opt = options_.embedding;
  embed_opt.seed = options_.seed;
  LabelEmbedder embedder(embed_opt);
  {
    obs::ScopedSpan span("pipeline.embed_train", &timings.embed_train);
    PGHIVE_RETURN_NOT_OK(embedder.Train(BuildBatchLabelCorpus(batch)));
  }
  FeatureEncoder encoder(&embedder, options_.encoder, pool);

  // Clusters one encoded population with the configured LSH backend.
  auto cluster_population =
      [&](const EncodedElements& enc, ElementKind kind,
          AdaptiveLshParams* diag)
      -> Result<std::vector<std::vector<size_t>>> {
    std::vector<std::vector<size_t>> groups;
    if (enc.ids.empty()) return groups;
    const bool is_node = kind == ElementKind::kNode;
    const char* project_span = is_node ? "pipeline.cluster_nodes.project"
                                       : "pipeline.cluster_edges.project";
    const char* hash_span = is_node ? "pipeline.cluster_nodes.hash"
                                    : "pipeline.cluster_edges.hash";
    double* project_out = is_node ? &timings.cluster_nodes_project
                                  : &timings.cluster_edges_project;
    double* hash_out =
        is_node ? &timings.cluster_nodes_hash : &timings.cluster_edges_hash;
    DataProfile profile;
    if (options_.adaptive_parameters) {
      profile.num_elements = enc.ids.size();
      profile.num_distinct_labels = CountDistinctLabels(batch, kind);
      profile.mean_pairwise_distance =
          SampleMeanDistance(enc.features, enc.sig_of, options_.seed);
      *diag = ComputeAdaptiveParams(profile, kind, options_.adaptive_tuning);
    }
    // Sharded Feed path: shard of each signature group. Every group maps to
    // exactly one graph signature (edge encoder groups are FINER than the
    // edge SignatureId — signature plus endpoint tokens), so any member's
    // stored signature identifies the group's shard.
    const GraphSymbols& sym = g.symbols();
    auto shard_of_reps = [&]() {
      std::vector<size_t> shard_of(enc.reps.size());
      for (size_t r = 0; r < enc.reps.size(); ++r) {
        const size_t id = enc.ids[enc.reps[r]];
        const uint64_t key =
            kind == ElementKind::kNode
                ? sym.node_signatures.shard_key(g.node(id).signature)
                : sym.edge_signatures.shard_key(g.edge(id).signature);
        shard_of[r] = shard_plan_.ShardOf(key);
      }
      return shard_of;
    };
    if (options_.method == ClusteringMethod::kElsh) {
      EuclideanLshOptions lsh_opt = options_.elsh;
      if (options_.adaptive_parameters) {
        lsh_opt = ToElshOptions(*diag, options_.seed);
        lsh_opt.hashes_per_table = options_.elsh.hashes_per_table;
      }
      PGHIVE_ASSIGN_OR_RETURN(EuclideanLsh lsh,
                              EuclideanLsh::Create(enc.dim, lsh_opt));
      // Hashing is pure (read-only LSH state) and members of a signature
      // group share identical vectors, so only each group's representative
      // — its aligned SoA feature row — is hashed, and only the component
      // ids fan out — byte-identical to hashing every element, at any
      // thread count.
      auto rep_keys_fn = [&](size_t r) {
        std::vector<uint64_t> keys(static_cast<size_t>(lsh.num_tables()));
        lsh.HashRow(enc.features.row(r), keys.data());
        return keys;
      };
      if (shard_plan_.sharded()) {
        // Shard-local hashing + candidate generation, merged in ascending
        // shard order (lsh/sharded_candidates.h) — same groups, same order.
        // Shard workers interleave projection and merging, so the
        // project/hash sub-timings stay 0 on this path.
        return ShardedClusterGroups(pool, shard_plan_.num_shards(),
                                    shard_of_reps(), rep_keys_fn, enc.sig_of);
      }
      std::vector<std::vector<uint64_t>> rep_keys;
      {
        obs::ScopedSpan span(project_span, project_out);
        rep_keys = ParallelMap(pool, enc.reps.size(), rep_keys_fn);
      }
      obs::ScopedSpan span(hash_span, hash_out);
      return ClusterGroupsByRepKeys(rep_keys, enc.sig_of);
    }
    MinHashLshOptions mh_opt = options_.minhash;
    if (options_.adaptive_parameters) {
      // The adaptive table count T is the signature length (the paper's
      // "number of hash tables" for MinHash).
      mh_opt.num_hashes =
          std::max(diag->num_tables, mh_opt.rows_per_band);
      mh_opt.num_hashes -= mh_opt.num_hashes % mh_opt.rows_per_band;
      mh_opt.seed = options_.seed;
    }
    PGHIVE_ASSIGN_OR_RETURN(MinHashLsh lsh, MinHashLsh::Create(mh_opt));
    // Clustering rule: two elements share a cluster seed iff their whole
    // signatures agree (probability J^T) — similar sets collide often,
    // dissimilar ones rarely (§4.2). Fragments are reunited by Algorithm 2.
    // Group members share identical token sets, so only representatives are
    // MinHashed — each a pre-hashed slice of the encoder's flat token pool,
    // min-folded by the simd kernel — and only the component ids fan out.
    auto rep_sig_key = [&](size_t r) {
      std::vector<uint64_t> sig(static_cast<size_t>(lsh.options().num_hashes));
      lsh.SignatureFromHashes(
          enc.token_hashes.data() + enc.token_begin[r],
          enc.token_begin[r + 1] - enc.token_begin[r], sig.data());
      return lsh.SignatureKey(sig);
    };
    if (shard_plan_.sharded()) {
      return ShardedClusterGroups(
          pool, shard_plan_.num_shards(), shard_of_reps(),
          [&](size_t r) { return std::vector<uint64_t>{rep_sig_key(r)}; },
          enc.sig_of);
    }
    std::vector<uint64_t> rep_keys;
    {
      obs::ScopedSpan span(project_span, project_out);
      rep_keys = ParallelMap(pool, enc.reps.size(), rep_sig_key);
    }
    obs::ScopedSpan span(hash_span, hash_out);
    return ClusterGroupsByRepKey(rep_keys, enc.sig_of);
  };

  // --- Nodes first (edges consume the discovered node types). ---
  EncodedElements nodes;
  {
    obs::ScopedSpan span("pipeline.encode_nodes", &timings.encode_nodes);
    nodes = encoder.EncodeNodes(batch);
  }
  timings.encode_nodes_embed = nodes.embed_seconds;
  std::vector<std::vector<size_t>> node_groups;
  {
    obs::ScopedSpan span("pipeline.cluster_nodes", &timings.cluster_nodes);
    PGHIVE_ASSIGN_OR_RETURN(
        node_groups,
        cluster_population(nodes, ElementKind::kNode,
                           &diagnostics_.node_params));
  }
  diagnostics_.node_clusters = node_groups.size();
  node_cluster_count->Add(node_groups.size());
  {
    obs::ScopedSpan span("pipeline.extract_nodes", &timings.extract_nodes);
    ExtractNodeTypes(BuildNodeClusters(g, nodes.ids, node_groups),
                     options_.extraction, schema);
  }

  // Map this batch's unlabeled nodes to their discovered type's endpoint
  // label set so edges still see typed endpoints: a node that merged into a
  // labeled type looks exactly like a labeled endpoint; abstract types
  // contribute a "~ABSTRACT_n" marker token.
  FeatureEncoder::EndpointLabelMap endpoint_labels;
  endpoint_labels.reserve(batch.num_nodes());
  for (const auto& t : schema->node_types) {
    std::set<std::string> tokens =
        t.labels.empty() ? std::set<std::string>{"~" + t.name} : t.labels;
    for (NodeId id : t.instances) {
      if (id >= batch.node_begin && id < batch.node_end &&
          g.node(id).labels.empty()) {
        endpoint_labels[id] = tokens;
      }
    }
  }

  // --- Edges. ---
  EncodedElements edges;
  {
    obs::ScopedSpan span("pipeline.encode_edges", &timings.encode_edges);
    edges = encoder.EncodeEdges(batch, endpoint_labels);
  }
  timings.encode_edges_embed = edges.embed_seconds;
  std::vector<std::vector<size_t>> edge_groups;
  {
    obs::ScopedSpan span("pipeline.cluster_edges", &timings.cluster_edges);
    PGHIVE_ASSIGN_OR_RETURN(
        edge_groups,
        cluster_population(edges, ElementKind::kEdge,
                           &diagnostics_.edge_params));
  }
  diagnostics_.edge_clusters = edge_groups.size();
  edge_cluster_count->Add(edge_groups.size());
  {
    obs::ScopedSpan span("pipeline.extract_edges", &timings.extract_edges);
    ExtractEdgeTypes(
        BuildEdgeClusters(g, edges.ids, edge_groups, endpoint_labels),
        options_.extraction, schema);
  }
  return Status::OK();
}

void PgHivePipeline::PostProcess(const PropertyGraph& g,
                                 SchemaGraph* schema) const {
  PostProcessWithAggregates(g, nullptr, schema);
}

void PgHivePipeline::PostProcessWithAggregates(
    const PropertyGraph& g, const SchemaAggregates* aggregates,
    SchemaGraph* schema) const {
  StageTimings& timings = diagnostics_.timings;
  obs::ScopedSpan span("pipeline.post_process", &timings.post_process);
  ThreadPool* pool = EnsurePool();

  if (!options_.aggregate_post_process) {
    // Legacy rescan passes (A/B escape hatch) — same outputs, O(instances)
    // per call.
    {
      obs::ScopedSpan s("pipeline.post_constraints", &timings.post_constraints);
      InferPropertyConstraints(g, schema, pool);
    }
    {
      obs::ScopedSpan s("pipeline.post_datatypes", &timings.post_datatypes);
      InferDataTypes(g, options_.datatypes, schema, pool);
    }
    {
      obs::ScopedSpan s("pipeline.post_cardinalities",
                        &timings.post_cardinalities);
      ComputeCardinalities(g, schema, pool);
    }
    return;
  }

  // Finalize from aggregates: the caller's maintained state when it matches
  // the schema's instance assignment, otherwise a transient build in one
  // chunked parallel pass over the assigned instances.
  SchemaAggregates local;
  if (aggregates == nullptr || !aggregates->ConsistentWith(*schema)) {
    obs::ScopedSpan s("pipeline.post_fold", &timings.post_fold);
    local = BuildAggregates(g, *schema, pool);
    aggregates = &local;
  }
  const GraphSymbols& sym = g.symbols();
  {
    obs::ScopedSpan s("pipeline.post_constraints", &timings.post_constraints);
    FinalizeConstraints(sym, *aggregates, schema, pool);
  }
  {
    obs::ScopedSpan s("pipeline.post_datatypes", &timings.post_datatypes);
    // The sampling mode draws from the concrete value lists in an
    // RNG-consumption order the tallies cannot reproduce — rescan for it.
    if (options_.datatypes.sample) {
      InferDataTypes(g, options_.datatypes, schema, pool);
    } else {
      FinalizeDataTypes(sym, *aggregates, schema, pool);
    }
  }
  {
    obs::ScopedSpan s("pipeline.post_cardinalities",
                      &timings.post_cardinalities);
    FinalizeCardinalities(*aggregates, schema, pool);
  }
}

Result<SchemaGraph> PgHivePipeline::DiscoverSchema(const PropertyGraph& g) {
  obs::ScopedSpan span("pipeline.discover");
  if (span.recording()) {
    span.AddAttr("nodes", static_cast<uint64_t>(g.num_nodes()));
    span.AddAttr("edges", static_cast<uint64_t>(g.num_edges()));
  }
  if (obs::MetricsEnabled()) PublishGraphGauges(g);
  SchemaGraph schema;
  PGHIVE_RETURN_NOT_OK(ProcessBatch(FullBatch(g), &schema));
  if (options_.post_process) PostProcess(g, &schema);
  return schema;
}

}  // namespace pghive
