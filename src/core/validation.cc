#include "core/validation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace pghive {

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kNoMatchingType:
      return "NoMatchingType";
    case ViolationKind::kMissingMandatory:
      return "MissingMandatory";
    case ViolationKind::kDatatypeMismatch:
      return "DatatypeMismatch";
    case ViolationKind::kUndeclaredProperty:
      return "UndeclaredProperty";
    case ViolationKind::kEndpointMismatch:
      return "EndpointMismatch";
    case ViolationKind::kCardinalityExceeded:
      return "CardinalityExceeded";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = ViolationKindName(kind);
  out += is_edge ? " edge #" : " node #";
  out += std::to_string(element_id);
  if (!type_name.empty()) out += " (type " + type_name + ")";
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::string ValidationReport::Summary() const {
  std::string out = std::to_string(elements_valid) + "/" +
                    std::to_string(elements_checked) + " elements valid (" +
                    (mode == ValidationMode::kStrict ? "STRICT" : "LOOSE") +
                    ")";
  if (!violations.empty()) {
    out += ", " + std::to_string(violations.size()) + " violations:";
    size_t shown = std::min<size_t>(violations.size(), 10);
    for (size_t i = 0; i < shown; ++i) {
      out += "\n  " + violations[i].ToString();
    }
    if (shown < violations.size()) {
      out += "\n  ... (" + std::to_string(violations.size() - shown) +
             " more)";
    }
  }
  return out;
}

bool DataTypeAccepts(DataType declared, DataType observed) {
  if (declared == observed) return true;
  if (declared == DataType::kString) return true;
  if (declared == DataType::kDouble && observed == DataType::kInt) {
    return true;
  }
  if (declared == DataType::kTimestamp && observed == DataType::kDate) {
    return true;
  }
  return false;
}

namespace {

bool IsSubset(const std::set<std::string>& sub,
              const std::set<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

template <typename Elem>
std::set<std::string> PropertyKeySet(const Elem& e) {
  std::set<std::string> keys;
  for (const auto& [k, v] : e.properties) keys.insert(k);
  return keys;
}

// LOOSE coverage check for a node against a node type.
bool NodeCovered(const Node& n, const SchemaNodeType& t,
                 const std::set<std::string>& keys) {
  return IsSubset(n.labels, t.labels) && IsSubset(keys, t.property_keys);
}

bool EdgeCovered(const PropertyGraph& g, const Edge& e,
                 const SchemaEdgeType& t, const std::set<std::string>& keys) {
  if (!IsSubset(e.labels, t.labels)) return false;
  if (!IsSubset(keys, t.property_keys)) return false;
  const Node& src = g.node(e.source);
  const Node& tgt = g.node(e.target);
  // Labeled endpoints must be covered by the declared endpoint label sets
  // (unlabeled endpoints impose no constraint at the LOOSE level).
  if (!src.labels.empty() && !t.source_labels.empty() &&
      !IsSubset(src.labels, t.source_labels)) {
    return false;
  }
  if (!tgt.labels.empty() && !t.target_labels.empty() &&
      !IsSubset(tgt.labels, t.target_labels)) {
    return false;
  }
  return true;
}

// Collects the STRICT-mode violations of an element against its matched
// type; returns true if none.
template <typename TypeT, typename Elem>
bool CheckStrictProperties(const Elem& e, const TypeT& t, bool is_edge,
                           std::vector<Violation>* out) {
  bool ok = true;
  for (const auto& [key, constraint] : t.constraints) {
    auto it = e.properties.find(key);
    if (it == e.properties.end()) {
      if (constraint.mandatory) {
        out->push_back({ViolationKind::kMissingMandatory, is_edge, e.id,
                        t.name, "missing mandatory property '" + key + "'"});
        ok = false;
      }
      continue;
    }
    if (!DataTypeAccepts(constraint.type, it->second.type())) {
      out->push_back(
          {ViolationKind::kDatatypeMismatch, is_edge, e.id, t.name,
           "property '" + key + "' has " +
               DataTypeName(it->second.type()) + ", declared " +
               DataTypeName(constraint.type)});
      ok = false;
    }
  }
  for (const auto& [key, value] : e.properties) {
    if (!t.property_keys.count(key)) {
      out->push_back({ViolationKind::kUndeclaredProperty, is_edge, e.id,
                      t.name, "undeclared property '" + key + "'"});
      ok = false;
    }
  }
  return ok;
}

}  // namespace

ValidationReport ValidateGraph(const PropertyGraph& g,
                               const SchemaGraph& schema,
                               const ValidationOptions& options) {
  ValidationReport report;
  report.mode = options.mode;
  const bool strict = options.mode == ValidationMode::kStrict;

  auto room = [&] {
    return options.max_violations == 0 ||
           report.violations.size() < options.max_violations;
  };

  // --- Nodes ---
  for (const auto& n : g.nodes()) {
    ++report.elements_checked;
    std::set<std::string> keys = PropertyKeySet(n);
    const SchemaNodeType* match = nullptr;
    for (const auto& t : schema.node_types) {
      if (NodeCovered(n, t, keys)) {
        match = &t;
        break;
      }
    }
    if (match == nullptr) {
      if (room()) {
        report.violations.push_back({ViolationKind::kNoMatchingType, false,
                                     n.id, "",
                                     "no type covers labels/properties"});
      }
      continue;
    }
    bool ok = true;
    if (strict) {
      std::vector<Violation> local;
      ok = CheckStrictProperties(n, *match, /*is_edge=*/false, &local);
      for (auto& v : local) {
        if (room()) report.violations.push_back(std::move(v));
      }
    }
    if (ok) ++report.elements_valid;
  }

  // --- Edges ---
  // Per-type fan counts for the cardinality check (STRICT only).
  std::vector<const SchemaEdgeType*> matched_type(g.num_edges(), nullptr);
  for (const auto& e : g.edges()) {
    ++report.elements_checked;
    std::set<std::string> keys = PropertyKeySet(e);
    const SchemaEdgeType* match = nullptr;
    // Track near-misses that fail only on endpoints, for better reporting.
    const SchemaEdgeType* endpoint_miss = nullptr;
    for (const auto& t : schema.edge_types) {
      if (EdgeCovered(g, e, t, keys)) {
        match = &t;
        break;
      }
      if (endpoint_miss == nullptr && IsSubset(e.labels, t.labels) &&
          IsSubset(keys, t.property_keys)) {
        endpoint_miss = &t;
      }
    }
    if (match == nullptr) {
      if (room()) {
        if (endpoint_miss != nullptr) {
          report.violations.push_back(
              {ViolationKind::kEndpointMismatch, true, e.id,
               endpoint_miss->name,
               "endpoints outside the type's source/target label sets"});
        } else {
          report.violations.push_back(
              {ViolationKind::kNoMatchingType, true, e.id, "",
               "no type covers labels/properties/endpoints"});
        }
      }
      continue;
    }
    matched_type[e.id] = match;
    bool ok = true;
    if (strict) {
      std::vector<Violation> local;
      ok = CheckStrictProperties(e, *match, /*is_edge=*/true, &local);
      for (auto& v : local) {
        if (room()) report.violations.push_back(std::move(v));
      }
    }
    if (ok) ++report.elements_valid;
  }

  if (strict) {
    // Cardinality: fan counts per (type, endpoint) must respect the class.
    struct Fans {
      std::unordered_map<NodeId, std::unordered_set<NodeId>> out, in;
    };
    std::unordered_map<const SchemaEdgeType*, Fans> fans;
    for (const auto& e : g.edges()) {
      const SchemaEdgeType* t = matched_type[e.id];
      if (t == nullptr) continue;
      fans[t].out[e.source].insert(e.target);
      fans[t].in[e.target].insert(e.source);
    }
    for (const auto& [t, f] : fans) {
      if (t->cardinality == SchemaCardinality::kUnknown) continue;
      bool out_must_be_one =
          t->cardinality == SchemaCardinality::kZeroOrOne ||
          t->cardinality == SchemaCardinality::kManyToOne;
      bool in_must_be_one = t->cardinality == SchemaCardinality::kZeroOrOne ||
                            t->cardinality == SchemaCardinality::kOneToMany;
      if (out_must_be_one) {
        for (const auto& [src, tgts] : f.out) {
          if (tgts.size() > 1 && room()) {
            report.violations.push_back(
                {ViolationKind::kCardinalityExceeded, true, src, t->name,
                 "source node " + std::to_string(src) + " has " +
                     std::to_string(tgts.size()) +
                     " distinct targets, declared " +
                     SchemaCardinalityName(t->cardinality)});
          }
        }
      }
      if (in_must_be_one) {
        for (const auto& [tgt, srcs] : f.in) {
          if (srcs.size() > 1 && room()) {
            report.violations.push_back(
                {ViolationKind::kCardinalityExceeded, true, tgt, t->name,
                 "target node " + std::to_string(tgt) + " has " +
                     std::to_string(srcs.size()) +
                     " distinct sources, declared " +
                     SchemaCardinalityName(t->cardinality)});
          }
        }
      }
    }
  }
  return report;
}

}  // namespace pghive
