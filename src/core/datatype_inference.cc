#include "core/datatype_inference.h"

#include <algorithm>

#include "common/random.h"

namespace pghive {

DataType FoldValueTypes(const std::vector<const Value*>& values) {
  if (values.empty()) return DataType::kString;
  DataType acc = values[0]->type();
  for (size_t i = 1; i < values.size(); ++i) {
    acc = GeneralizeDataType(acc, values[i]->type());
    if (acc == DataType::kString) break;  // cannot generalize further
  }
  return acc;
}

namespace {

template <typename TypeT, typename GetElem>
void InferForType(TypeT* t, const DataTypeInferenceOptions& options, Rng* rng,
                  GetElem get) {
  for (const auto& key : t->property_keys) {
    // Collect (pointers to) all observed values of this property.
    std::vector<const Value*> values;
    for (auto id : t->instances) {
      const auto& props = get(id).properties;
      auto it = props.find(key);
      if (it != props.end()) values.push_back(&it->second);
    }
    if (options.sample && values.size() > options.min_sample) {
      size_t want = std::max(
          options.min_sample,
          static_cast<size_t>(options.sample_fraction *
                              static_cast<double>(values.size())));
      if (want < values.size()) {
        auto pick = rng->SampleWithoutReplacement(values.size(), want);
        std::vector<const Value*> sampled;
        sampled.reserve(pick.size());
        for (size_t idx : pick) sampled.push_back(values[idx]);
        values = std::move(sampled);
      }
    }
    t->constraints[key].type = FoldValueTypes(values);
  }
}

}  // namespace

void InferDataTypes(const PropertyGraph& g,
                    const DataTypeInferenceOptions& options,
                    SchemaGraph* schema) {
  Rng rng(options.seed, 0xd7);
  for (auto& t : schema->node_types) {
    InferForType(&t, options, &rng,
                 [&](NodeId id) -> const Node& { return g.node(id); });
  }
  for (auto& t : schema->edge_types) {
    InferForType(&t, options, &rng,
                 [&](EdgeId id) -> const Edge& { return g.edge(id); });
  }
}

}  // namespace pghive
