#include "core/datatype_inference.h"

#include <algorithm>

#include "common/random.h"
#include "runtime/parallel.h"

namespace pghive {

DataType FoldValueTypes(const std::vector<const Value*>& values) {
  if (values.empty()) return DataType::kString;
  DataType acc = values[0]->type();
  for (size_t i = 1; i < values.size(); ++i) {
    acc = GeneralizeDataType(acc, values[i]->type());
    if (acc == DataType::kString) break;  // cannot generalize further
  }
  return acc;
}

namespace {

template <typename TypeT, typename GetElem>
void InferForType(const GraphSymbols& sym, TypeT* t,
                  const DataTypeInferenceOptions& options, Rng* rng,
                  GetElem get, ThreadPool* pool) {
  for (const auto& key : t->property_keys) {
    // Key presence is a function of the interned key set, so resolve it
    // once per distinct set; the per-instance scan then tests one byte
    // before touching the property row. Filled before the parallel loop —
    // chunks only read it.
    std::vector<char> has(sym.key_sets.size(), 0);
    for (size_t ks = 0; ks < has.size(); ++ks) {
      has[ks] =
          sym.key_sets.strings(static_cast<KeySetId>(ks)).count(key) ? 1 : 0;
    }
    // Collect (pointers to) all observed values of this property. The scan
    // over instances is chunked; concatenating the per-chunk lists in chunk
    // order reproduces the sequential collection order exactly, which keeps
    // the sample indices below meaningful at any thread count.
    std::vector<const Value*> values = ParallelReduceOrdered(
        pool, t->instances.size(), std::vector<const Value*>(),
        [&](size_t begin, size_t end) {
          std::vector<const Value*> chunk;
          for (size_t i = begin; i < end; ++i) {
            const auto& elem = get(t->instances[i]);
            if (!has[elem.key_set]) continue;
            chunk.push_back(elem.properties.FindValue(key));
          }
          return chunk;
        },
        [](std::vector<const Value*>* acc, std::vector<const Value*>&& chunk) {
          acc->insert(acc->end(), chunk.begin(), chunk.end());
        });
    if (options.sample && values.size() > options.min_sample) {
      size_t want = std::max(
          options.min_sample,
          static_cast<size_t>(options.sample_fraction *
                              static_cast<double>(values.size())));
      if (want < values.size()) {
        auto pick = rng->SampleWithoutReplacement(values.size(), want);
        std::vector<const Value*> sampled;
        sampled.reserve(pick.size());
        for (size_t idx : pick) sampled.push_back(values[idx]);
        values = std::move(sampled);
      }
    }
    t->constraints[key].type = FoldValueTypes(values);
  }
}

}  // namespace

void InferDataTypes(const PropertyGraph& g,
                    const DataTypeInferenceOptions& options,
                    SchemaGraph* schema, ThreadPool* pool) {
  Rng rng(options.seed, 0xd7);
  for (auto& t : schema->node_types) {
    InferForType(
        g.symbols(), &t, options, &rng,
        [&](NodeId id) -> const Node& { return g.node(id); }, pool);
  }
  for (auto& t : schema->edge_types) {
    InferForType(
        g.symbols(), &t, options, &rng,
        [&](EdgeId id) -> const Edge& { return g.edge(id); }, pool);
  }
}

}  // namespace pghive
