#include "core/cardinality.h"

#include <unordered_map>
#include <unordered_set>

#include "runtime/parallel.h"

namespace pghive {

SchemaCardinality ClassifyCardinality(size_t max_out, size_t max_in) {
  if (max_out == 0 || max_in == 0) return SchemaCardinality::kUnknown;
  bool out_many = max_out > 1;
  bool in_many = max_in > 1;
  if (!out_many && !in_many) return SchemaCardinality::kZeroOrOne;
  if (!out_many && in_many) return SchemaCardinality::kManyToOne;
  if (out_many && !in_many) return SchemaCardinality::kOneToMany;
  return SchemaCardinality::kManyToMany;
}

void ComputeCardinalities(const PropertyGraph& g, SchemaGraph* schema,
                          ThreadPool* pool) {
  // Edge types are disjoint workloads (grain 1: degree-map sizes vary).
  ParallelFor(
      pool, schema->edge_types.size(),
      [&](size_t i) {
        auto& t = schema->edge_types[i];
        // Distinct targets per source and distinct sources per target.
        std::unordered_map<NodeId, std::unordered_set<NodeId>> out_sets;
        std::unordered_map<NodeId, std::unordered_set<NodeId>> in_sets;
        for (EdgeId id : t.instances) {
          const Edge& e = g.edge(id);
          out_sets[e.source].insert(e.target);
          in_sets[e.target].insert(e.source);
        }
        size_t max_out = 0;
        for (const auto& [src, tgts] : out_sets) {
          max_out = std::max(max_out, tgts.size());
        }
        size_t max_in = 0;
        for (const auto& [tgt, srcs] : in_sets) {
          max_in = std::max(max_in, srcs.size());
        }
        t.max_out_degree = max_out;
        t.max_in_degree = max_in;
        t.cardinality = ClassifyCardinality(max_out, max_in);
      },
      /*grain=*/1);
}

}  // namespace pghive
