#include "core/incremental.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pghive {

IncrementalDiscoverer::IncrementalDiscoverer(IncrementalOptions options)
    : options_(options), pipeline_(options.pipeline) {}

Status IncrementalDiscoverer::Feed(const GraphBatch& batch) {
  // Schema-delta counters: how many types each batch contributed
  // (pghive.incremental.*). The chain is monotone (S_i ⊑ S_{i+1}), so the
  // after-minus-before difference is the batch's contribution.
  static obs::Counter* batches_total = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.batches");
  static obs::Counter* node_types_added = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.node_types_added");
  static obs::Counter* edge_types_added = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.edge_types_added");

  double seconds = 0.0;
  const size_t node_types_before = schema_.node_types.size();
  const size_t edge_types_before = schema_.edge_types.size();
  {
    obs::ScopedSpan span("incremental.batch", &seconds);
    if (span.recording()) {
      span.AddAttr("batch", static_cast<uint64_t>(batch_seconds_.size()));
      span.AddAttr("nodes", static_cast<uint64_t>(batch.num_nodes()));
      span.AddAttr("edges", static_cast<uint64_t>(batch.num_edges()));
    }
    PGHIVE_RETURN_NOT_OK(pipeline_.ProcessBatch(batch, &schema_));
    if (options_.pipeline.aggregate_post_process) {
      // O(batch): folds only the instances this batch appended. A fresh
      // discoverer (or one restored without aggregates) folds everything
      // assigned so far on its first call.
      if (!aggregates_.FoldNew(*batch.graph, schema_)) {
        aggregates_valid_ = false;
      }
      if (obs::MetricsEnabled()) PublishAggregateGauges(aggregates_);
    }
    if (options_.post_process_each_batch) {
      pipeline_.PostProcessWithAggregates(*batch.graph, AggregatesOrNull(),
                                          &schema_);
      post_process_seconds_.push_back(
          pipeline_.last_diagnostics().timings.post_process);
    } else {
      post_process_seconds_.push_back(0.0);
    }
  }
  batches_total->Add(1);
  if (schema_.node_types.size() > node_types_before) {
    node_types_added->Add(schema_.node_types.size() - node_types_before);
  }
  if (schema_.edge_types.size() > edge_types_before) {
    edge_types_added->Add(schema_.edge_types.size() - edge_types_before);
  }
  batch_seconds_.push_back(seconds);
  return Status::OK();
}

void IncrementalDiscoverer::RestoreState(SchemaGraph schema,
                                         std::vector<double> batch_seconds,
                                         SchemaAggregates aggregates) {
  schema_ = std::move(schema);
  batch_seconds_ = std::move(batch_seconds);
  post_process_seconds_.assign(batch_seconds_.size(), 0.0);
  aggregates_valid_ = true;
  if (aggregates.ConsistentWith(schema_)) {
    aggregates_ = std::move(aggregates);
  } else {
    // Stale or absent: the next Feed's FoldNew (watermark 0) rebuilds them
    // from the restored schema's instance lists.
    aggregates_.Clear();
  }
}

const SchemaAggregates* IncrementalDiscoverer::AggregatesOrNull() const {
  return options_.pipeline.aggregate_post_process && aggregates_valid_
             ? &aggregates_
             : nullptr;
}

const SchemaGraph& IncrementalDiscoverer::Finish(const PropertyGraph& g) {
  // With maintained aggregates this is pure finalization — no rescan, and
  // no repeat of work already done by per-batch post-processing.
  pipeline_.PostProcessWithAggregates(g, AggregatesOrNull(), &schema_);
  return schema_;
}

SchemaGraph IncrementalDiscoverer::FinishedCopy(const PropertyGraph& g) const {
  SchemaGraph copy = schema_;
  pipeline_.PostProcessWithAggregates(g, AggregatesOrNull(), &copy);
  return copy;
}

namespace {

/// Reinterprets a schema type as a cluster so schema-with-schema merging
/// reuses Algorithm 2 verbatim.
Cluster NodeTypeAsCluster(const SchemaNodeType& t) {
  Cluster c;
  c.members.assign(t.instances.begin(), t.instances.end());
  c.labels = t.labels;
  c.property_keys = t.property_keys;
  return c;
}

Cluster EdgeTypeAsCluster(const SchemaEdgeType& t) {
  Cluster c;
  c.members.assign(t.instances.begin(), t.instances.end());
  c.labels = t.labels;
  c.property_keys = t.property_keys;
  c.source_labels = t.source_labels;
  c.target_labels = t.target_labels;
  return c;
}

}  // namespace

SchemaGraph MergeSchemas(const SchemaGraph& s1, const SchemaGraph& s2,
                         const TypeExtractionOptions& options) {
  SchemaGraph merged = s1;
  std::vector<Cluster> node_clusters;
  node_clusters.reserve(s2.node_types.size());
  for (const auto& t : s2.node_types) {
    node_clusters.push_back(NodeTypeAsCluster(t));
  }
  std::vector<Cluster> edge_clusters;
  edge_clusters.reserve(s2.edge_types.size());
  for (const auto& t : s2.edge_types) {
    edge_clusters.push_back(EdgeTypeAsCluster(t));
  }
  ExtractNodeTypes(node_clusters, options, &merged);
  ExtractEdgeTypes(edge_clusters, options, &merged);
  return merged;
}

}  // namespace pghive
