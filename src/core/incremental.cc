#include "core/incremental.h"

#include "common/timer.h"

namespace pghive {

IncrementalDiscoverer::IncrementalDiscoverer(IncrementalOptions options)
    : options_(options), pipeline_(options.pipeline) {}

Status IncrementalDiscoverer::Feed(const GraphBatch& batch) {
  Timer timer;
  PGHIVE_RETURN_NOT_OK(pipeline_.ProcessBatch(batch, &schema_));
  if (options_.post_process_each_batch) {
    pipeline_.PostProcess(*batch.graph, &schema_);
  }
  batch_seconds_.push_back(timer.ElapsedSeconds());
  return Status::OK();
}

void IncrementalDiscoverer::RestoreState(SchemaGraph schema,
                                         std::vector<double> batch_seconds) {
  schema_ = std::move(schema);
  batch_seconds_ = std::move(batch_seconds);
}

const SchemaGraph& IncrementalDiscoverer::Finish(const PropertyGraph& g) {
  pipeline_.PostProcess(g, &schema_);
  return schema_;
}

namespace {

/// Reinterprets a schema type as a cluster so schema-with-schema merging
/// reuses Algorithm 2 verbatim.
Cluster NodeTypeAsCluster(const SchemaNodeType& t) {
  Cluster c;
  c.members.assign(t.instances.begin(), t.instances.end());
  c.labels = t.labels;
  c.property_keys = t.property_keys;
  return c;
}

Cluster EdgeTypeAsCluster(const SchemaEdgeType& t) {
  Cluster c;
  c.members.assign(t.instances.begin(), t.instances.end());
  c.labels = t.labels;
  c.property_keys = t.property_keys;
  c.source_labels = t.source_labels;
  c.target_labels = t.target_labels;
  return c;
}

}  // namespace

SchemaGraph MergeSchemas(const SchemaGraph& s1, const SchemaGraph& s2,
                         const TypeExtractionOptions& options) {
  SchemaGraph merged = s1;
  std::vector<Cluster> node_clusters;
  node_clusters.reserve(s2.node_types.size());
  for (const auto& t : s2.node_types) {
    node_clusters.push_back(NodeTypeAsCluster(t));
  }
  std::vector<Cluster> edge_clusters;
  edge_clusters.reserve(s2.edge_types.size());
  for (const auto& t : s2.edge_types) {
    edge_clusters.push_back(EdgeTypeAsCluster(t));
  }
  ExtractNodeTypes(node_clusters, options, &merged);
  ExtractEdgeTypes(edge_clusters, options, &merged);
  return merged;
}

}  // namespace pghive
