#include "core/incremental.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pghive {

IncrementalDiscoverer::IncrementalDiscoverer(IncrementalOptions options)
    : options_(options), pipeline_(options.pipeline) {}

Status IncrementalDiscoverer::Feed(const GraphBatch& batch) {
  // Schema-delta counters: how many types each batch contributed
  // (pghive.incremental.*). The chain is monotone (S_i ⊑ S_{i+1}), so the
  // after-minus-before difference is the batch's contribution.
  static obs::Counter* batches_total = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.batches");
  static obs::Counter* node_types_added = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.node_types_added");
  static obs::Counter* edge_types_added = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.edge_types_added");

  double seconds = 0.0;
  const size_t node_types_before = schema_.node_types.size();
  const size_t edge_types_before = schema_.edge_types.size();
  {
    obs::ScopedSpan span("incremental.batch", &seconds);
    if (span.recording()) {
      span.AddAttr("batch", static_cast<uint64_t>(batch_seconds_.size()));
      span.AddAttr("nodes", static_cast<uint64_t>(batch.num_nodes()));
      span.AddAttr("edges", static_cast<uint64_t>(batch.num_edges()));
    }
    PGHIVE_RETURN_NOT_OK(pipeline_.ProcessBatch(batch, &schema_));
    if (options_.pipeline.aggregate_post_process) {
      // O(batch): folds only the instances this batch appended. A fresh
      // discoverer (or one restored without aggregates) folds everything
      // assigned so far on its first call. The sharded plan partitions the
      // fold by signature across the pipeline's pool, merged in shard
      // order — content-identical to the sequential fold.
      if (!aggregates_.FoldNewSharded(*batch.graph, schema_,
                                      pipeline_.shard_plan(),
                                      pipeline_.thread_pool())) {
        aggregates_valid_ = false;
      }
      if (obs::MetricsEnabled()) PublishAggregateGauges(aggregates_);
    }
    if (options_.post_process_each_batch) {
      pipeline_.PostProcessWithAggregates(*batch.graph, AggregatesOrNull(),
                                          &schema_);
      post_process_seconds_.push_back(
          pipeline_.last_diagnostics().timings.post_process);
    } else {
      post_process_seconds_.push_back(0.0);
    }
  }
  batches_total->Add(1);
  if (schema_.node_types.size() > node_types_before) {
    node_types_added->Add(schema_.node_types.size() - node_types_before);
  }
  if (schema_.edge_types.size() > edge_types_before) {
    edge_types_added->Add(schema_.edge_types.size() - edge_types_before);
  }
  batch_seconds_.push_back(seconds);
  return Status::OK();
}

Status IncrementalDiscoverer::FeedMutations(
    const GraphBatch& batch, const std::vector<NodeId>& deleted_nodes,
    const std::vector<EdgeId>& deleted_edges) {
  if (!options_.pipeline.aggregate_post_process) {
    return Status::FailedPrecondition(
        "mutation batches require aggregate post-processing "
        "(retraction subtracts from the delta-maintained aggregates)");
  }
  if (!aggregates_valid_) {
    return Status::FailedPrecondition(
        "aggregates were invalidated by external schema surgery; "
        "mutation batches cannot retract from them");
  }
  static obs::Counter* mutation_batches = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.mutation_batches");
  static obs::Counter* nodes_retracted = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.nodes_retracted");
  static obs::Counter* edges_retracted = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.edges_retracted");
  static obs::Counter* types_retired = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.types_retired");
  static obs::Counter* aggregate_rebuilds = obs::MetricsRegistry::Global()
      .GetCounter("pghive.incremental.aggregate_rebuilds");

  double seconds = 0.0;
  RetractionStats rstats;
  {
    obs::ScopedSpan span("incremental.mutation_batch", &seconds);
    if (span.recording()) {
      span.AddAttr("batch", static_cast<uint64_t>(batch_seconds_.size()));
      span.AddAttr("nodes", static_cast<uint64_t>(batch.num_nodes()));
      span.AddAttr("edges", static_cast<uint64_t>(batch.num_edges()));
      span.AddAttr("deleted_nodes",
                   static_cast<uint64_t>(deleted_nodes.size()));
      span.AddAttr("deleted_edges",
                   static_cast<uint64_t>(deleted_edges.size()));
    }
    if (!mutations_seen_) {
      retraction_index_.Rebuild(schema_);
      mutations_seen_ = true;
    } else {
      retraction_index_.Sync(schema_);
    }
    PGHIVE_RETURN_NOT_OK(RetractInstancesSharded(
        *batch.graph, deleted_nodes, deleted_edges, pipeline_.shard_plan(),
        &schema_, &aggregates_, &retraction_index_, &rstats));
    // A pure-deletion batch has nothing to embed or cluster.
    if (batch.num_nodes() > 0 || batch.num_edges() > 0) {
      PGHIVE_RETURN_NOT_OK(pipeline_.ProcessBatch(batch, &schema_));
      if (!aggregates_.FoldNewSharded(*batch.graph, schema_,
                                      pipeline_.shard_plan(),
                                      pipeline_.thread_pool())) {
        aggregates_valid_ = false;
      }
    }
    if (obs::MetricsEnabled()) PublishAggregateGauges(aggregates_);
    if (options_.post_process_each_batch) {
      pipeline_.PostProcessWithAggregates(*batch.graph, AggregatesOrNull(),
                                          &schema_);
      post_process_seconds_.push_back(
          pipeline_.last_diagnostics().timings.post_process);
    } else {
      post_process_seconds_.push_back(0.0);
    }
  }
  mutation_batches->Add(1);
  nodes_retracted->Add(rstats.nodes_retracted);
  edges_retracted->Add(rstats.edges_retracted);
  types_retired->Add(rstats.node_types_retired + rstats.edge_types_retired);
  aggregate_rebuilds->Add(rstats.aggregate_rebuilds);
  batch_seconds_.push_back(seconds);
  return Status::OK();
}

void IncrementalDiscoverer::RestoreState(SchemaGraph schema,
                                         std::vector<double> batch_seconds,
                                         SchemaAggregates aggregates) {
  schema_ = std::move(schema);
  batch_seconds_ = std::move(batch_seconds);
  post_process_seconds_.assign(batch_seconds_.size(), 0.0);
  aggregates_valid_ = true;
  // The retraction index points into the replaced schema; rebuild lazily on
  // the next FeedMutations.
  retraction_index_ = RetractionIndex();
  mutations_seen_ = false;
  if (aggregates.ConsistentWith(schema_)) {
    aggregates_ = std::move(aggregates);
  } else {
    // Stale or absent: the next Feed's FoldNew (watermark 0) rebuilds them
    // from the restored schema's instance lists.
    aggregates_.Clear();
  }
}

const SchemaAggregates* IncrementalDiscoverer::AggregatesOrNull() const {
  return options_.pipeline.aggregate_post_process && aggregates_valid_
             ? &aggregates_
             : nullptr;
}

const SchemaGraph& IncrementalDiscoverer::Finish(const PropertyGraph& g) {
  // With maintained aggregates this is pure finalization — no rescan, and
  // no repeat of work already done by per-batch post-processing.
  pipeline_.PostProcessWithAggregates(g, AggregatesOrNull(), &schema_);
  return schema_;
}

SchemaGraph IncrementalDiscoverer::FinishedCopy(const PropertyGraph& g) const {
  SchemaGraph copy = schema_;
  pipeline_.PostProcessWithAggregates(g, AggregatesOrNull(), &copy);
  return copy;
}

namespace {

/// Reinterprets a schema type as a cluster so schema-with-schema merging
/// reuses Algorithm 2 verbatim.
Cluster NodeTypeAsCluster(const SchemaNodeType& t) {
  Cluster c;
  c.members.assign(t.instances.begin(), t.instances.end());
  c.labels = t.labels;
  c.property_keys = t.property_keys;
  return c;
}

Cluster EdgeTypeAsCluster(const SchemaEdgeType& t) {
  Cluster c;
  c.members.assign(t.instances.begin(), t.instances.end());
  c.labels = t.labels;
  c.property_keys = t.property_keys;
  c.source_labels = t.source_labels;
  c.target_labels = t.target_labels;
  return c;
}

}  // namespace

SchemaGraph MergeSchemas(const SchemaGraph& s1, const SchemaGraph& s2,
                         const TypeExtractionOptions& options) {
  SchemaGraph merged = s1;
  std::vector<Cluster> node_clusters;
  node_clusters.reserve(s2.node_types.size());
  for (const auto& t : s2.node_types) {
    node_clusters.push_back(NodeTypeAsCluster(t));
  }
  std::vector<Cluster> edge_clusters;
  edge_clusters.reserve(s2.edge_types.size());
  for (const auto& t : s2.edge_types) {
    edge_clusters.push_back(EdgeTypeAsCluster(t));
  }
  ExtractNodeTypes(node_clusters, options, &merged);
  ExtractEdgeTypes(edge_clusters, options, &merged);
  return merged;
}

}  // namespace pghive
