// The discovered schema graph (Definitions 3.2-3.4, PG-Schema flavored).
//
// A SchemaGraph holds node types and edge types. Each type records its label
// set, the union of observed property keys (Lemmas 1-2 guarantee unions are
// never narrowed by merging), the assigned instance ids, and — after
// post-processing — per-property constraints (datatype +
// MANDATORY/OPTIONAL) and edge cardinalities.

#ifndef PGHIVE_CORE_SCHEMA_H_
#define PGHIVE_CORE_SCHEMA_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "graph/value.h"

namespace pghive {

/// Edge-type cardinality classes derived from (max_out, max_in) as in §4.4:
/// (1,1) -> 0:1, (>1,1) -> N:1, (1,>1) -> 0:N, (>1,>1) -> M:N.
enum class SchemaCardinality {
  kUnknown = 0,
  kZeroOrOne,   // (1, 1)
  kManyToOne,   // (>1, 1)
  kOneToMany,   // (1, >1)
  kManyToMany,  // (>1, >1)
};

const char* SchemaCardinalityName(SchemaCardinality c);

/// Constraint of one property within a type: datatype + completeness.
struct PropertyConstraint {
  DataType type = DataType::kString;
  bool mandatory = false;
};

/// Discovered node type (Def. 3.2).
struct SchemaNodeType {
  std::string name;                    // canonical label token or ABSTRACT_n
  std::set<std::string> labels;        // lambda_n
  std::set<std::string> property_keys; // union over instances
  /// Filled by post-processing (constraints + datatypes); keys are a subset
  /// of property_keys.
  std::map<std::string, PropertyConstraint> constraints;
  bool is_abstract = false;            // unlabeled, kept as ABSTRACT type
  std::vector<NodeId> instances;       // assigned instance ids
};

/// Discovered edge type (Def. 3.3).
struct SchemaEdgeType {
  std::string name;
  std::set<std::string> labels;
  std::set<std::string> property_keys;
  std::map<std::string, PropertyConstraint> constraints;
  std::set<std::string> source_labels;  // rho_e, as endpoint label sets
  std::set<std::string> target_labels;
  SchemaCardinality cardinality = SchemaCardinality::kUnknown;
  size_t max_out_degree = 0;  // raw (max_out, max_in) behind the class
  size_t max_in_degree = 0;
  bool is_abstract = false;
  std::vector<EdgeId> instances;
};

/// The full discovered schema S_G = (V_s, E_s, rho_s).
struct SchemaGraph {
  std::vector<SchemaNodeType> node_types;
  std::vector<SchemaEdgeType> edge_types;

  size_t num_types() const { return node_types.size() + edge_types.size(); }

  /// Index of the node type with exactly this label set, or -1.
  int FindNodeTypeByLabels(const std::set<std::string>& labels) const;

  /// Index of the edge type with exactly this label set, or -1.
  int FindEdgeTypeByLabels(const std::set<std::string>& labels) const;
};

/// True iff every label and property key of `sub`'s types is covered by a
/// type of `super` with the same (or superset) labels — the schema-ordering
/// check S_sub ⊑ S_super used by the incremental monotonicity guarantee
/// (§4.6). Instance assignments are ignored.
bool SchemaCovers(const SchemaGraph& super, const SchemaGraph& sub);

/// Human-readable one-line summary ("7 node types, 17 edge types").
std::string SchemaSummary(const SchemaGraph& schema);

}  // namespace pghive

#endif  // PGHIVE_CORE_SCHEMA_H_
