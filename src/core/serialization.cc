#include "core/serialization.h"

#include <algorithm>

#include "common/string_util.h"

namespace pghive {

namespace {

std::string SanitizeIdentifier(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "Unnamed";
  return out;
}

std::string TypeIdentifier(const std::string& name, const char* suffix) {
  return SanitizeIdentifier(name) + suffix;
}

// Property list: "{name STRING, email OPTIONAL STRING}"; empty string when
// the type has no properties. LOOSE mode omits datatypes and optionality.
std::string PropertyBlock(const std::set<std::string>& keys,
                          const std::map<std::string, PropertyConstraint>& cs,
                          PgSchemaMode mode) {
  if (keys.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (const auto& key : keys) {
    auto it = cs.find(key);
    if (mode == PgSchemaMode::kLoose || it == cs.end()) {
      parts.push_back(key);
      continue;
    }
    std::string part = key;
    if (!it->second.mandatory) part += " OPTIONAL";
    part += std::string(" ") + DataTypeGqlName(it->second.type);
    parts.push_back(std::move(part));
  }
  return " {" + Join(parts, ", ") + "}";
}

std::string LabelSpec(const std::set<std::string>& labels) {
  if (labels.empty()) return "";
  return ": " + Join(labels, " & ");
}

}  // namespace

std::string ToPgSchema(const SchemaGraph& schema,
                       const std::string& graph_name, PgSchemaMode mode) {
  std::string out = "CREATE GRAPH TYPE " + SanitizeIdentifier(graph_name);
  out += mode == PgSchemaMode::kLoose ? " LOOSE {\n" : " STRICT {\n";

  std::vector<std::string> decls;
  decls.reserve(schema.num_types());
  for (const auto& t : schema.node_types) {
    std::string decl = "  (" + TypeIdentifier(t.name, "Type");
    if (t.is_abstract && mode == PgSchemaMode::kStrict) decl += " ABSTRACT";
    decl += LabelSpec(t.labels);
    decl += PropertyBlock(t.property_keys, t.constraints, mode);
    decl += ")";
    decls.push_back(std::move(decl));
  }
  for (const auto& t : schema.edge_types) {
    std::string src = t.source_labels.empty()
                          ? ""
                          : ": " + Join(t.source_labels, " | ");
    std::string tgt = t.target_labels.empty()
                          ? ""
                          : ": " + Join(t.target_labels, " | ");
    std::string decl = "  (" + src + ")-[" + TypeIdentifier(t.name, "Type");
    decl += LabelSpec(t.labels);
    decl += PropertyBlock(t.property_keys, t.constraints, mode);
    decl += "]->(" + tgt + ")";
    if (mode == PgSchemaMode::kStrict &&
        t.cardinality != SchemaCardinality::kUnknown) {
      decl += std::string(" /* cardinality ") +
              SchemaCardinalityName(t.cardinality) + " */";
    }
    decls.push_back(std::move(decl));
  }
  out += Join(decls, ",\n");
  out += "\n}\n";
  return out;
}

std::string ToXsd(const SchemaGraph& schema) {
  std::string out =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";

  auto emit_properties =
      [&out](const std::set<std::string>& keys,
             const std::map<std::string, PropertyConstraint>& cs) {
        out += "    <xs:sequence>\n";
        for (const auto& key : keys) {
          auto it = cs.find(key);
          const char* xsd_type = it == cs.end()
                                     ? "xs:string"
                                     : DataTypeXsdName(it->second.type);
          bool mandatory = it != cs.end() && it->second.mandatory;
          out += "      <xs:element name=\"" + XmlEscape(key) + "\" type=\"" +
                 xsd_type + "\"";
          if (!mandatory) out += " minOccurs=\"0\"";
          out += "/>\n";
        }
        out += "    </xs:sequence>\n";
      };

  for (const auto& t : schema.node_types) {
    out += "  <xs:complexType name=\"" +
           XmlEscape(SanitizeIdentifier(t.name)) + "\"";
    if (t.is_abstract) out += " abstract=\"true\"";
    out += ">\n";
    if (!t.labels.empty()) {
      out += "    <xs:annotation><xs:documentation>labels: " +
             XmlEscape(Join(t.labels, ", ")) +
             "</xs:documentation></xs:annotation>\n";
    }
    emit_properties(t.property_keys, t.constraints);
    out += "  </xs:complexType>\n";
  }
  for (const auto& t : schema.edge_types) {
    out += "  <xs:complexType name=\"" +
           XmlEscape(SanitizeIdentifier(t.name)) + "_Edge\">\n";
    out += "    <xs:annotation><xs:documentation>";
    out += "source: " + XmlEscape(Join(t.source_labels, "|"));
    out += "; target: " + XmlEscape(Join(t.target_labels, "|"));
    if (t.cardinality != SchemaCardinality::kUnknown) {
      out += std::string("; cardinality: ") +
             SchemaCardinalityName(t.cardinality);
    }
    out += "</xs:documentation></xs:annotation>\n";
    emit_properties(t.property_keys, t.constraints);
    out += "  </xs:complexType>\n";
  }
  out += "</xs:schema>\n";
  return out;
}

}  // namespace pghive
