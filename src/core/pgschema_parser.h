// Parser for the PG-Schema-style grammar emitted by core/serialization.h.
//
// PG-Schema has no finalized concrete syntax (paper §4.5); this parser
// accepts the illustrative grammar of Angles et al. (2023) that ToPgSchema
// writes, in both LOOSE and STRICT modes:
//
//   CREATE GRAPH TYPE Name STRICT {
//     (PersonType: Person {name STRING, email OPTIONAL STRING}),
//     (GhostType ABSTRACT {blob OPTIONAL STRING}),
//     (: Person)-[KnowsType: KNOWS {since OPTIONAL DATE}]->(: Person)
//         /* cardinality M:N */
//   }
//
// Together with ToPgSchema this gives a full round-trip: a discovered
// schema can be exported, reviewed/edited by hand, and re-imported for
// validation. Type names are recovered by stripping the "Type" suffix;
// everything else (labels, properties, constraints, endpoints,
// cardinalities, ABSTRACT flags) round-trips losslessly.

#ifndef PGHIVE_CORE_PGSCHEMA_PARSER_H_
#define PGHIVE_CORE_PGSCHEMA_PARSER_H_

#include <string>

#include "common/result.h"
#include "core/schema.h"
#include "core/serialization.h"

namespace pghive {

struct ParsedPgSchema {
  std::string graph_name;
  PgSchemaMode mode = PgSchemaMode::kStrict;
  SchemaGraph schema;
};

/// Parses a PG-Schema document. Fails with ParseError (with offset
/// information) on malformed input.
Result<ParsedPgSchema> ParsePgSchema(const std::string& text);

}  // namespace pghive

#endif  // PGHIVE_CORE_PGSCHEMA_PARSER_H_
