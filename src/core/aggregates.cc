#include "core/aggregates.h"

#include <algorithm>

#include "core/cardinality.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

/// Folds one element (node or edge) into its type's accumulator: key-set
/// histogram, per-key datatype tally + numeric partials. The element's value
/// row is aligned with its key set's canonical (lexicographic) key order, so
/// the key ids and values pair up positionally — no per-key lookup.
template <typename Elem>
void FoldElement(const GraphSymbols& sym, const Elem& el, TypeAggregate* agg) {
  ++agg->folded;
  ++agg->key_set_counts[el.key_set];
  const std::vector<SymbolId>& key_ids = sym.key_sets.ids(el.key_set);
  for (size_t i = 0; i < key_ids.size(); ++i) {
    PropertyAggregate& pa = agg->keys[key_ids[i]];
    ++pa.present;
    const Value& v = el.properties.value_at(i);
    const DataType dt = v.type();
    ++pa.type_counts[static_cast<size_t>(dt)];
    if (dt == DataType::kInt || dt == DataType::kDouble) {
      const double x = dt == DataType::kInt ? static_cast<double>(v.AsInt())
                                            : v.AsDouble();
      if (pa.numeric_count == 0 || x < pa.numeric_min) pa.numeric_min = x;
      if (pa.numeric_count == 0 || x > pa.numeric_max) pa.numeric_max = x;
      ++pa.numeric_count;
    }
  }
}

/// Folds an edge's endpoints into the distinct-degree state. The maxima
/// update on every set growth; growth is monotone, so the running maximum
/// equals the maximum over final set sizes.
void FoldEdgeEndpoints(const Edge& e, TypeAggregate* agg) {
  auto& targets = agg->out_sets[e.source];
  if (targets.insert(e.target).second && targets.size() > agg->max_out) {
    agg->max_out = targets.size();
  }
  auto& sources = agg->in_sets[e.target];
  if (sources.insert(e.source).second && sources.size() > agg->max_in) {
    agg->max_in = sources.size();
  }
}

void MergeDegreeMap(
    std::unordered_map<NodeId, std::unordered_set<NodeId>>* into,
    const std::unordered_map<NodeId, std::unordered_set<NodeId>>& from,
    uint64_t* max_degree) {
  for (const auto& [endpoint, others] : from) {
    auto& mine = (*into)[endpoint];
    for (NodeId other : others) {
      if (mine.insert(other).second && mine.size() > *max_degree) {
        *max_degree = mine.size();
      }
    }
  }
}

/// Joins the distinct observed datatypes of a tally in enum order. Equal to
/// the sequential FoldValueTypes left fold because GeneralizeDataType is a
/// semilattice join (order-independent); an empty tally is String, matching
/// FoldValueTypes({}).
DataType JoinTally(const std::array<uint64_t, kNumDataTypes>& counts) {
  bool any = false;
  DataType acc = DataType::kString;
  for (size_t d = 0; d < kNumDataTypes; ++d) {
    if (counts[d] == 0) continue;
    const DataType dt = static_cast<DataType>(d);
    acc = any ? GeneralizeDataType(acc, dt) : dt;
    any = true;
  }
  return acc;
}

uint64_t PresentCount(const GraphSymbols& sym, const TypeAggregate& agg,
                      const std::string& key,
                      const PropertyAggregate** out_pa) {
  *out_pa = nullptr;
  const SymbolId* sid = sym.keys.Find(key);
  if (sid == nullptr) return 0;
  auto it = agg.keys.find(*sid);
  if (it == agg.keys.end()) return 0;
  *out_pa = &it->second;
  return it->second.present;
}

}  // namespace

void PropertyAggregate::Merge(const PropertyAggregate& other) {
  present += other.present;
  for (size_t d = 0; d < kNumDataTypes; ++d) {
    type_counts[d] += other.type_counts[d];
  }
  if (other.numeric_count > 0) {
    if (numeric_count == 0 || other.numeric_min < numeric_min) {
      numeric_min = other.numeric_min;
    }
    if (numeric_count == 0 || other.numeric_max > numeric_max) {
      numeric_max = other.numeric_max;
    }
    numeric_count += other.numeric_count;
  }
}

void TypeAggregate::Merge(const TypeAggregate& other) {
  folded += other.folded;
  for (const auto& [ks, n] : other.key_set_counts) key_set_counts[ks] += n;
  for (const auto& [sid, pa] : other.keys) keys[sid].Merge(pa);
  MergeDegreeMap(&out_sets, other.out_sets, &max_out);
  MergeDegreeMap(&in_sets, other.in_sets, &max_in);
  // The insertion-driven updates above already cover other's maxima (every
  // set of `other` is touched and ends at least as large); the explicit max
  // is a free invariant restatement.
  max_out = std::max(max_out, other.max_out);
  max_in = std::max(max_in, other.max_in);
}

bool SchemaAggregates::ConsistentWith(const SchemaGraph& schema) const {
  if (node_types.size() != schema.node_types.size() ||
      edge_types.size() != schema.edge_types.size()) {
    return false;
  }
  for (size_t i = 0; i < node_types.size(); ++i) {
    if (node_types[i].folded != schema.node_types[i].instances.size()) {
      return false;
    }
  }
  for (size_t i = 0; i < edge_types.size(); ++i) {
    if (edge_types[i].folded != schema.edge_types[i].instances.size()) {
      return false;
    }
  }
  return true;
}

bool SchemaAggregates::FoldNew(const PropertyGraph& g,
                               const SchemaGraph& schema) {
  bool ok = node_types.size() <= schema.node_types.size() &&
            edge_types.size() <= schema.edge_types.size();
  node_types.resize(schema.node_types.size());
  edge_types.resize(schema.edge_types.size());
  const GraphSymbols& sym = g.symbols();
  for (size_t i = 0; i < node_types.size(); ++i) {
    const SchemaNodeType& t = schema.node_types[i];
    TypeAggregate& a = node_types[i];
    if (a.folded > t.instances.size()) {
      ok = false;  // instance list shrank below the watermark
      continue;
    }
    for (size_t j = a.folded; j < t.instances.size(); ++j) {
      FoldElement(sym, g.node(t.instances[j]), &a);
    }
  }
  for (size_t i = 0; i < edge_types.size(); ++i) {
    const SchemaEdgeType& t = schema.edge_types[i];
    TypeAggregate& a = edge_types[i];
    if (a.folded > t.instances.size()) {
      ok = false;
      continue;
    }
    for (size_t j = a.folded; j < t.instances.size(); ++j) {
      const Edge& e = g.edge(t.instances[j]);
      FoldElement(sym, e, &a);
      FoldEdgeEndpoints(e, &a);
    }
  }
  return ok;
}

void SchemaAggregates::Merge(const SchemaAggregates& other) {
  if (node_types.size() < other.node_types.size()) {
    node_types.resize(other.node_types.size());
  }
  if (edge_types.size() < other.edge_types.size()) {
    edge_types.resize(other.edge_types.size());
  }
  for (size_t i = 0; i < other.node_types.size(); ++i) {
    node_types[i].Merge(other.node_types[i]);
  }
  for (size_t i = 0; i < other.edge_types.size(); ++i) {
    edge_types[i].Merge(other.edge_types[i]);
  }
}

void SchemaAggregates::Clear() {
  node_types.clear();
  edge_types.clear();
}

uint64_t SchemaAggregates::FoldedInstances() const {
  uint64_t total = 0;
  for (const auto& a : node_types) total += a.folded;
  for (const auto& a : edge_types) total += a.folded;
  return total;
}

uint64_t SchemaAggregates::KeyEntries() const {
  uint64_t total = 0;
  for (const auto& a : node_types) total += a.keys.size();
  for (const auto& a : edge_types) total += a.keys.size();
  return total;
}

uint64_t SchemaAggregates::DegreeEntries() const {
  uint64_t total = 0;
  for (const auto& a : edge_types) {
    total += a.out_sets.size() + a.in_sets.size();
  }
  return total;
}

uint64_t SchemaAggregates::ApproxBytes() const {
  // Rough heap accounting: per-entry node overhead for the tree maps, bucket
  // + element cost for the hash containers.
  constexpr uint64_t kMapNode = 48;
  constexpr uint64_t kHashEntry = 32;
  uint64_t bytes = 0;
  auto type_bytes = [&](const TypeAggregate& a) {
    bytes += sizeof(TypeAggregate);
    bytes += a.key_set_counts.size() * (kMapNode + sizeof(uint64_t) * 2);
    bytes += a.keys.size() * (kMapNode + sizeof(PropertyAggregate));
    for (const auto* m : {&a.out_sets, &a.in_sets}) {
      bytes += m->size() * (kHashEntry + sizeof(std::unordered_set<NodeId>));
      for (const auto& [k, s] : *m) bytes += s.size() * kHashEntry;
    }
  };
  for (const auto& a : node_types) type_bytes(a);
  for (const auto& a : edge_types) type_bytes(a);
  return bytes;
}

SchemaAggregates BuildAggregates(const PropertyGraph& g,
                                 const SchemaGraph& schema,
                                 ThreadPool* pool) {
  SchemaAggregates agg;
  const GraphSymbols& sym = g.symbols();

  // One chunked reduction per element kind over the flattened
  // (type, instance) index space: chunk boundaries depend only on the total
  // instance count, partials merge in ascending chunk order, and every
  // component (counts, map unions, growth-driven maxima) is exact under
  // merging — so the merged content is independent of the chunking.
  auto build = [&](const auto& types, std::vector<TypeAggregate>* out,
                   auto fold_one) {
    std::vector<size_t> offset(types.size() + 1, 0);
    for (size_t i = 0; i < types.size(); ++i) {
      offset[i + 1] = offset[i] + types[i].instances.size();
    }
    const size_t total = offset.back();
    using Partial = std::vector<TypeAggregate>;
    *out = ParallelReduceOrdered(
        pool, total, Partial(types.size()),
        [&](size_t begin, size_t end) {
          Partial partial(types.size());
          size_t t = static_cast<size_t>(
              std::upper_bound(offset.begin(), offset.end(), begin) -
              offset.begin() - 1);
          for (size_t idx = begin; idx < end;) {
            while (idx >= offset[t + 1]) ++t;
            const size_t stop = std::min(end, offset[t + 1]);
            for (; idx < stop; ++idx) {
              fold_one(types[t], idx - offset[t], &partial[t]);
            }
          }
          return partial;
        },
        [](Partial* acc, Partial&& partial) {
          for (size_t i = 0; i < partial.size(); ++i) {
            (*acc)[i].Merge(partial[i]);
          }
        });
  };

  build(schema.node_types, &agg.node_types,
        [&](const SchemaNodeType& t, size_t j, TypeAggregate* a) {
          FoldElement(sym, g.node(t.instances[j]), a);
        });
  build(schema.edge_types, &agg.edge_types,
        [&](const SchemaEdgeType& t, size_t j, TypeAggregate* a) {
          const Edge& e = g.edge(t.instances[j]);
          FoldElement(sym, e, a);
          FoldEdgeEndpoints(e, a);
        });
  return agg;
}

void FinalizeConstraints(const GraphSymbols& sym, const SchemaAggregates& agg,
                         SchemaGraph* schema, ThreadPool* pool) {
  auto run = [&](auto* types, const std::vector<TypeAggregate>& aggs) {
    ParallelFor(
        pool, types->size(),
        [&](size_t i) {
          auto& t = (*types)[i];
          const TypeAggregate& a = aggs[i];
          for (const auto& key : t.property_keys) {
            PropertyConstraint& c = t.constraints[key];  // default-insert
            const PropertyAggregate* pa = nullptr;
            const uint64_t present = PresentCount(sym, a, key, &pa);
            c.mandatory = a.folded > 0 && present == a.folded;
          }
        },
        /*grain=*/1);
  };
  run(&schema->node_types, agg.node_types);
  run(&schema->edge_types, agg.edge_types);
}

void FinalizeDataTypes(const GraphSymbols& sym, const SchemaAggregates& agg,
                       SchemaGraph* schema, ThreadPool* pool) {
  auto run = [&](auto* types, const std::vector<TypeAggregate>& aggs) {
    ParallelFor(
        pool, types->size(),
        [&](size_t i) {
          auto& t = (*types)[i];
          const TypeAggregate& a = aggs[i];
          for (const auto& key : t.property_keys) {
            const PropertyAggregate* pa = nullptr;
            PresentCount(sym, a, key, &pa);
            t.constraints[key].type =
                pa == nullptr ? DataType::kString : JoinTally(pa->type_counts);
          }
        },
        /*grain=*/1);
  };
  run(&schema->node_types, agg.node_types);
  run(&schema->edge_types, agg.edge_types);
}

void FinalizeCardinalities(const SchemaAggregates& agg, SchemaGraph* schema,
                           ThreadPool* pool) {
  ParallelFor(
      pool, schema->edge_types.size(),
      [&](size_t i) {
        SchemaEdgeType& t = schema->edge_types[i];
        const TypeAggregate& a = agg.edge_types[i];
        t.max_out_degree = static_cast<size_t>(a.max_out);
        t.max_in_degree = static_cast<size_t>(a.max_in);
        t.cardinality = ClassifyCardinality(t.max_out_degree, t.max_in_degree);
      },
      /*grain=*/1);
}

void PublishAggregateGauges(const SchemaAggregates& agg) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("pghive.aggregates.node_types")
      ->Set(static_cast<int64_t>(agg.node_types.size()));
  reg.GetGauge("pghive.aggregates.edge_types")
      ->Set(static_cast<int64_t>(agg.edge_types.size()));
  reg.GetGauge("pghive.aggregates.folded_instances")
      ->Set(static_cast<int64_t>(agg.FoldedInstances()));
  reg.GetGauge("pghive.aggregates.key_entries")
      ->Set(static_cast<int64_t>(agg.KeyEntries()));
  reg.GetGauge("pghive.aggregates.degree_entries")
      ->Set(static_cast<int64_t>(agg.DegreeEntries()));
  reg.GetGauge("pghive.aggregates.approx_bytes")
      ->Set(static_cast<int64_t>(agg.ApproxBytes()));
}

}  // namespace pghive
