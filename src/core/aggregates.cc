#include "core/aggregates.h"

#include <algorithm>

#include "core/cardinality.h"
#include "obs/metrics.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

/// Moves one endpoint between degree-histogram buckets (its distinct degree
/// changed from `from` to `to`; 0 means "no bucket").
void HistShift(std::map<uint64_t, uint64_t>* hist, uint64_t from,
               uint64_t to) {
  if (from == to) return;
  if (from > 0) {
    auto it = hist->find(from);
    if (it != hist->end() && --it->second == 0) hist->erase(it);
  }
  if (to > 0) ++(*hist)[to];
}

/// Folds one element (node or edge) into its type's accumulator: key-set +
/// label-set histograms, per-key datatype tally + numeric partials. The
/// element's value row is aligned with its key set's canonical
/// (lexicographic) key order, so the key ids and values pair up
/// positionally — no per-key lookup.
template <typename Elem>
void FoldElement(const GraphSymbols& sym, const Elem& el, TypeAggregate* agg) {
  ++agg->folded;
  ++agg->key_set_counts[el.key_set];
  ++agg->label_set_counts[el.label_set];
  const std::vector<SymbolId>& key_ids = sym.key_sets.ids(el.key_set);
  for (size_t i = 0; i < key_ids.size(); ++i) {
    PropertyAggregate& pa = agg->keys[key_ids[i]];
    ++pa.present;
    const Value& v = el.properties.value_at(i);
    const DataType dt = v.type();
    ++pa.type_counts[static_cast<size_t>(dt)];
    if (dt == DataType::kInt || dt == DataType::kDouble) {
      const double x = dt == DataType::kInt ? static_cast<double>(v.AsInt())
                                            : v.AsDouble();
      if (pa.numeric_count == 0 || x < pa.numeric_min) pa.numeric_min = x;
      if (pa.numeric_count == 0 || x > pa.numeric_max) pa.numeric_max = x;
      ++pa.numeric_count;
    }
  }
}

/// Folds an edge's endpoints: endpoint label-set histograms plus the counted
/// degree maps and their degree histograms.
void FoldEdgeEndpoints(const PropertyGraph& g, const Edge& e,
                       TypeAggregate* agg) {
  ++agg->src_set_counts[g.node(e.source).label_set];
  ++agg->tgt_set_counts[g.node(e.target).label_set];
  auto& targets = agg->out_counts[e.source];
  if (++targets[e.target] == 1) {
    HistShift(&agg->out_degree_hist, targets.size() - 1, targets.size());
  }
  auto& sources = agg->in_counts[e.target];
  if (++sources[e.source] == 1) {
    HistShift(&agg->in_degree_hist, sources.size() - 1, sources.size());
  }
}

void MergeCountedDegreeMap(
    std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>>* into,
    const std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>>&
        from,
    std::map<uint64_t, uint64_t>* hist) {
  for (const auto& [endpoint, others] : from) {
    auto& mine = (*into)[endpoint];
    for (const auto& [other, n] : others) {
      uint64_t& c = mine[other];
      if (c == 0) HistShift(hist, mine.size() - 1, mine.size());
      c += n;
    }
  }
}

/// Decrements a counted-histogram entry, erasing it at zero. False when the
/// entry is missing (underflow).
template <typename Map, typename Key>
bool DecrementCount(Map* map, const Key& key) {
  auto it = map->find(key);
  if (it == map->end() || it->second == 0) return false;
  if (--it->second == 0) map->erase(it);
  return true;
}

/// Inverse of FoldElement. Map entries are erased at count zero so the
/// retracted state matches a fresh fold of the survivors bit-for-bit.
template <typename Elem>
void RetractElement(const GraphSymbols& sym, const Elem& el,
                    TypeAggregate* agg, RetractOutcome* out) {
  if (agg->folded == 0) {
    out->ok = false;
    return;
  }
  --agg->folded;
  if (!DecrementCount(&agg->key_set_counts, el.key_set)) out->ok = false;
  if (!DecrementCount(&agg->label_set_counts, el.label_set)) out->ok = false;
  const std::vector<SymbolId>& key_ids = sym.key_sets.ids(el.key_set);
  for (size_t i = 0; i < key_ids.size(); ++i) {
    auto kit = agg->keys.find(key_ids[i]);
    if (kit == agg->keys.end()) {
      out->ok = false;
      continue;
    }
    PropertyAggregate& pa = kit->second;
    const Value& v = el.properties.value_at(i);
    const DataType dt = v.type();
    const size_t d = static_cast<size_t>(dt);
    if (pa.present == 0 || pa.type_counts[d] == 0) {
      out->ok = false;
      continue;
    }
    --pa.present;
    --pa.type_counts[d];
    if (dt == DataType::kInt || dt == DataType::kDouble) {
      if (pa.numeric_count == 0) {
        out->ok = false;
      } else {
        --pa.numeric_count;
        const double x = dt == DataType::kInt ? static_cast<double>(v.AsInt())
                                              : v.AsDouble();
        if (pa.numeric_count == 0) {
          // Back to the fresh-accumulator state (matters for operator==
          // against a rebuild).
          pa.numeric_min = 0.0;
          pa.numeric_max = 0.0;
        } else if (x <= pa.numeric_min || x >= pa.numeric_max) {
          out->rescan_keys.push_back(key_ids[i]);
        }
      }
    }
    if (pa.present == 0) agg->keys.erase(kit);
  }
}

/// Inverse of FoldEdgeEndpoints.
void RetractEdgeEndpoints(const PropertyGraph& g, const Edge& e,
                          TypeAggregate* agg, RetractOutcome* out) {
  if (!DecrementCount(&agg->src_set_counts, g.node(e.source).label_set)) {
    out->ok = false;
  }
  if (!DecrementCount(&agg->tgt_set_counts, g.node(e.target).label_set)) {
    out->ok = false;
  }
  auto retract_one =
      [&](std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>>*
              counts,
          std::map<uint64_t, uint64_t>* hist, NodeId endpoint, NodeId other) {
        auto it = counts->find(endpoint);
        if (it == counts->end()) {
          out->ok = false;
          return;
        }
        auto jt = it->second.find(other);
        if (jt == it->second.end() || jt->second == 0) {
          out->ok = false;
          return;
        }
        if (--jt->second == 0) {
          const uint64_t degree = it->second.size();
          it->second.erase(jt);
          HistShift(hist, degree, degree - 1);
          if (it->second.empty()) counts->erase(it);
        }
      };
  retract_one(&agg->out_counts, &agg->out_degree_hist, e.source, e.target);
  retract_one(&agg->in_counts, &agg->in_degree_hist, e.target, e.source);
}

/// Recomputes min/max over the surviving instances carrying `key` (numeric
/// values only). Shared by the node/edge rescan entry points.
template <typename GetElem>
void RescanNumericExtrema(const GraphSymbols& sym,
                          const std::vector<size_t>& instances, GetElem get,
                          SymbolId key, PropertyAggregate* pa) {
  bool any = false;
  double lo = 0.0, hi = 0.0;
  for (size_t id : instances) {
    const auto& el = get(id);
    const std::vector<SymbolId>& key_ids = sym.key_sets.ids(el.key_set);
    for (size_t i = 0; i < key_ids.size(); ++i) {
      if (key_ids[i] != key) continue;
      const Value& v = el.properties.value_at(i);
      const DataType dt = v.type();
      if (dt == DataType::kInt || dt == DataType::kDouble) {
        const double x = dt == DataType::kInt
                             ? static_cast<double>(v.AsInt())
                             : v.AsDouble();
        if (!any || x < lo) lo = x;
        if (!any || x > hi) hi = x;
        any = true;
      }
      break;
    }
  }
  pa->numeric_min = any ? lo : 0.0;
  pa->numeric_max = any ? hi : 0.0;
}

/// Joins the distinct observed datatypes of a tally in enum order. Equal to
/// the sequential FoldValueTypes left fold because GeneralizeDataType is a
/// semilattice join (order-independent); an empty tally is String, matching
/// FoldValueTypes({}).
DataType JoinTally(const std::array<uint64_t, kNumDataTypes>& counts) {
  bool any = false;
  DataType acc = DataType::kString;
  for (size_t d = 0; d < kNumDataTypes; ++d) {
    if (counts[d] == 0) continue;
    const DataType dt = static_cast<DataType>(d);
    acc = any ? GeneralizeDataType(acc, dt) : dt;
    any = true;
  }
  return acc;
}

uint64_t PresentCount(const GraphSymbols& sym, const TypeAggregate& agg,
                      const std::string& key,
                      const PropertyAggregate** out_pa) {
  *out_pa = nullptr;
  const SymbolId* sid = sym.keys.Find(key);
  if (sid == nullptr) return 0;
  auto it = agg.keys.find(*sid);
  if (it == agg.keys.end()) return 0;
  *out_pa = &it->second;
  return it->second.present;
}

}  // namespace

void PropertyAggregate::Merge(const PropertyAggregate& other) {
  present += other.present;
  for (size_t d = 0; d < kNumDataTypes; ++d) {
    type_counts[d] += other.type_counts[d];
  }
  if (other.numeric_count > 0) {
    if (numeric_count == 0 || other.numeric_min < numeric_min) {
      numeric_min = other.numeric_min;
    }
    if (numeric_count == 0 || other.numeric_max > numeric_max) {
      numeric_max = other.numeric_max;
    }
    numeric_count += other.numeric_count;
  }
}

void TypeAggregate::Merge(const TypeAggregate& other) {
  folded += other.folded;
  for (const auto& [ks, n] : other.key_set_counts) key_set_counts[ks] += n;
  for (const auto& [ls, n] : other.label_set_counts) label_set_counts[ls] += n;
  for (const auto& [sid, pa] : other.keys) keys[sid].Merge(pa);
  for (const auto& [ls, n] : other.src_set_counts) src_set_counts[ls] += n;
  for (const auto& [ls, n] : other.tgt_set_counts) tgt_set_counts[ls] += n;
  MergeCountedDegreeMap(&out_counts, other.out_counts, &out_degree_hist);
  MergeCountedDegreeMap(&in_counts, other.in_counts, &in_degree_hist);
}

bool SchemaAggregates::ConsistentWith(const SchemaGraph& schema) const {
  if (node_types.size() != schema.node_types.size() ||
      edge_types.size() != schema.edge_types.size()) {
    return false;
  }
  for (size_t i = 0; i < node_types.size(); ++i) {
    if (node_types[i].folded != schema.node_types[i].instances.size()) {
      return false;
    }
  }
  for (size_t i = 0; i < edge_types.size(); ++i) {
    if (edge_types[i].folded != schema.edge_types[i].instances.size()) {
      return false;
    }
  }
  return true;
}

bool SchemaAggregates::FoldNew(const PropertyGraph& g,
                               const SchemaGraph& schema) {
  bool ok = node_types.size() <= schema.node_types.size() &&
            edge_types.size() <= schema.edge_types.size();
  node_types.resize(schema.node_types.size());
  edge_types.resize(schema.edge_types.size());
  const GraphSymbols& sym = g.symbols();
  for (size_t i = 0; i < node_types.size(); ++i) {
    const SchemaNodeType& t = schema.node_types[i];
    TypeAggregate& a = node_types[i];
    if (a.folded > t.instances.size()) {
      ok = false;  // instance list shrank below the watermark
      continue;
    }
    for (size_t j = a.folded; j < t.instances.size(); ++j) {
      FoldElement(sym, g.node(t.instances[j]), &a);
    }
  }
  for (size_t i = 0; i < edge_types.size(); ++i) {
    const SchemaEdgeType& t = schema.edge_types[i];
    TypeAggregate& a = edge_types[i];
    if (a.folded > t.instances.size()) {
      ok = false;
      continue;
    }
    for (size_t j = a.folded; j < t.instances.size(); ++j) {
      const Edge& e = g.edge(t.instances[j]);
      FoldElement(sym, e, &a);
      FoldEdgeEndpoints(g, e, &a);
    }
  }
  return ok;
}

bool SchemaAggregates::FoldNewSharded(const PropertyGraph& g,
                                      const SchemaGraph& schema,
                                      const ShardPlan& plan,
                                      ThreadPool* pool) {
  if (!plan.sharded()) return FoldNew(g, schema);
  bool ok = node_types.size() <= schema.node_types.size() &&
            edge_types.size() <= schema.edge_types.size();
  node_types.resize(schema.node_types.size());
  edge_types.resize(schema.edge_types.size());
  const GraphSymbols& sym = g.symbols();

  // Route each new (type, position) to its element's signature shard. The
  // routing scan visits instances in the sequential fold's order, so every
  // shard's item list is ascending (type, position) — each partial is the
  // sequential fold restricted to that shard's elements.
  const size_t num_shards = plan.num_shards();
  struct Item {
    size_t type;
    size_t pos;
  };
  std::vector<std::vector<Item>> node_items(num_shards);
  std::vector<std::vector<Item>> edge_items(num_shards);
  for (size_t i = 0; i < node_types.size(); ++i) {
    const SchemaNodeType& t = schema.node_types[i];
    TypeAggregate& a = node_types[i];
    if (a.folded > t.instances.size()) {
      ok = false;  // instance list shrank below the watermark
      continue;
    }
    for (size_t j = a.folded; j < t.instances.size(); ++j) {
      const Node& n = g.node(t.instances[j]);
      node_items[plan.ShardOf(sym.node_signatures.shard_key(n.signature))]
          .push_back({i, j});
    }
  }
  for (size_t i = 0; i < edge_types.size(); ++i) {
    const SchemaEdgeType& t = schema.edge_types[i];
    TypeAggregate& a = edge_types[i];
    if (a.folded > t.instances.size()) {
      ok = false;
      continue;
    }
    for (size_t j = a.folded; j < t.instances.size(); ++j) {
      const Edge& e = g.edge(t.instances[j]);
      edge_items[plan.ShardOf(sym.edge_signatures.shard_key(e.signature))]
          .push_back({i, j});
    }
  }

  // Per-shard partial accumulators, merged in ascending shard order: the
  // per-type merge order is fixed by the shard count alone, never by the
  // thread count, and every component merges content-exactly.
  struct Partial {
    std::vector<TypeAggregate> nodes;
    std::vector<TypeAggregate> edges;
  };
  ParallelShardFold(
      pool, num_shards, /*init=*/0,
      [&](size_t shard) {
        Partial p;
        p.nodes.resize(node_types.size());
        p.edges.resize(edge_types.size());
        for (const Item& it : node_items[shard]) {
          FoldElement(sym, g.node(schema.node_types[it.type].instances[it.pos]),
                      &p.nodes[it.type]);
        }
        for (const Item& it : edge_items[shard]) {
          const Edge& e = g.edge(schema.edge_types[it.type].instances[it.pos]);
          FoldElement(sym, e, &p.edges[it.type]);
          FoldEdgeEndpoints(g, e, &p.edges[it.type]);
        }
        return p;
      },
      [&](int* /*acc*/, size_t /*shard*/, Partial&& p) {
        for (size_t i = 0; i < p.nodes.size(); ++i) {
          node_types[i].Merge(p.nodes[i]);
        }
        for (size_t i = 0; i < p.edges.size(); ++i) {
          edge_types[i].Merge(p.edges[i]);
        }
      });
  return ok;
}

void SchemaAggregates::Merge(const SchemaAggregates& other) {
  if (node_types.size() < other.node_types.size()) {
    node_types.resize(other.node_types.size());
  }
  if (edge_types.size() < other.edge_types.size()) {
    edge_types.resize(other.edge_types.size());
  }
  for (size_t i = 0; i < other.node_types.size(); ++i) {
    node_types[i].Merge(other.node_types[i]);
  }
  for (size_t i = 0; i < other.edge_types.size(); ++i) {
    edge_types[i].Merge(other.edge_types[i]);
  }
}

void SchemaAggregates::Clear() {
  node_types.clear();
  edge_types.clear();
}

uint64_t SchemaAggregates::FoldedInstances() const {
  uint64_t total = 0;
  for (const auto& a : node_types) total += a.folded;
  for (const auto& a : edge_types) total += a.folded;
  return total;
}

uint64_t SchemaAggregates::KeyEntries() const {
  uint64_t total = 0;
  for (const auto& a : node_types) total += a.keys.size();
  for (const auto& a : edge_types) total += a.keys.size();
  return total;
}

uint64_t SchemaAggregates::DegreeEntries() const {
  uint64_t total = 0;
  for (const auto& a : edge_types) {
    total += a.out_counts.size() + a.in_counts.size();
  }
  return total;
}

uint64_t SchemaAggregates::ApproxBytes() const {
  // Rough heap accounting: per-entry node overhead for the tree maps, bucket
  // + element cost for the hash containers.
  constexpr uint64_t kMapNode = 48;
  constexpr uint64_t kHashEntry = 32;
  uint64_t bytes = 0;
  auto type_bytes = [&](const TypeAggregate& a) {
    bytes += sizeof(TypeAggregate);
    const uint64_t count_maps = a.key_set_counts.size() +
                                a.label_set_counts.size() +
                                a.src_set_counts.size() +
                                a.tgt_set_counts.size() +
                                a.out_degree_hist.size() +
                                a.in_degree_hist.size();
    bytes += count_maps * (kMapNode + sizeof(uint64_t) * 2);
    bytes += a.keys.size() * (kMapNode + sizeof(PropertyAggregate));
    for (const auto* m : {&a.out_counts, &a.in_counts}) {
      bytes += m->size() *
               (kHashEntry + sizeof(std::unordered_map<NodeId, uint64_t>));
      for (const auto& [k, s] : *m) bytes += s.size() * kHashEntry;
    }
  };
  for (const auto& a : node_types) type_bytes(a);
  for (const auto& a : edge_types) type_bytes(a);
  return bytes;
}

SchemaAggregates BuildAggregates(const PropertyGraph& g,
                                 const SchemaGraph& schema,
                                 ThreadPool* pool) {
  SchemaAggregates agg;
  const GraphSymbols& sym = g.symbols();

  // One chunked reduction per element kind over the flattened
  // (type, instance) index space: chunk boundaries depend only on the total
  // instance count, partials merge in ascending chunk order, and every
  // component (counts, map unions, growth-driven maxima) is exact under
  // merging — so the merged content is independent of the chunking.
  auto build = [&](const auto& types, std::vector<TypeAggregate>* out,
                   auto fold_one) {
    std::vector<size_t> offset(types.size() + 1, 0);
    for (size_t i = 0; i < types.size(); ++i) {
      offset[i + 1] = offset[i] + types[i].instances.size();
    }
    const size_t total = offset.back();
    using Partial = std::vector<TypeAggregate>;
    *out = ParallelReduceOrdered(
        pool, total, Partial(types.size()),
        [&](size_t begin, size_t end) {
          Partial partial(types.size());
          size_t t = static_cast<size_t>(
              std::upper_bound(offset.begin(), offset.end(), begin) -
              offset.begin() - 1);
          for (size_t idx = begin; idx < end;) {
            while (idx >= offset[t + 1]) ++t;
            const size_t stop = std::min(end, offset[t + 1]);
            for (; idx < stop; ++idx) {
              fold_one(types[t], idx - offset[t], &partial[t]);
            }
          }
          return partial;
        },
        [](Partial* acc, Partial&& partial) {
          for (size_t i = 0; i < partial.size(); ++i) {
            (*acc)[i].Merge(partial[i]);
          }
        });
  };

  build(schema.node_types, &agg.node_types,
        [&](const SchemaNodeType& t, size_t j, TypeAggregate* a) {
          FoldElement(sym, g.node(t.instances[j]), a);
        });
  build(schema.edge_types, &agg.edge_types,
        [&](const SchemaEdgeType& t, size_t j, TypeAggregate* a) {
          const Edge& e = g.edge(t.instances[j]);
          FoldElement(sym, e, a);
          FoldEdgeEndpoints(g, e, a);
        });
  return agg;
}

void FoldNodeElement(const GraphSymbols& sym, const Node& n,
                     TypeAggregate* agg) {
  FoldElement(sym, n, agg);
}

void FoldEdgeElement(const PropertyGraph& g, const Edge& e,
                     TypeAggregate* agg) {
  FoldElement(g.symbols(), e, agg);
  FoldEdgeEndpoints(g, e, agg);
}

void RetractNodeElement(const GraphSymbols& sym, const Node& n,
                        TypeAggregate* agg, RetractOutcome* out) {
  RetractElement(sym, n, agg, out);
}

void RetractEdgeElement(const PropertyGraph& g, const Edge& e,
                        TypeAggregate* agg, RetractOutcome* out) {
  RetractElement(g.symbols(), e, agg, out);
  RetractEdgeEndpoints(g, e, agg, out);
}

void RescanNodeNumericExtrema(const PropertyGraph& g, const SchemaNodeType& t,
                              SymbolId key, PropertyAggregate* pa) {
  RescanNumericExtrema(
      g.symbols(), t.instances, [&](size_t id) -> const Node& {
        return g.node(id);
      },
      key, pa);
}

void RescanEdgeNumericExtrema(const PropertyGraph& g, const SchemaEdgeType& t,
                              SymbolId key, PropertyAggregate* pa) {
  RescanNumericExtrema(
      g.symbols(), t.instances, [&](size_t id) -> const Edge& {
        return g.edge(id);
      },
      key, pa);
}

TypeAggregate RebuildNodeAggregate(const PropertyGraph& g,
                                   const SchemaNodeType& t) {
  TypeAggregate agg;
  const GraphSymbols& sym = g.symbols();
  for (size_t id : t.instances) FoldElement(sym, g.node(id), &agg);
  return agg;
}

TypeAggregate RebuildEdgeAggregate(const PropertyGraph& g,
                                   const SchemaEdgeType& t) {
  TypeAggregate agg;
  for (size_t id : t.instances) FoldEdgeElement(g, g.edge(id), &agg);
  return agg;
}

void FinalizeConstraints(const GraphSymbols& sym, const SchemaAggregates& agg,
                         SchemaGraph* schema, ThreadPool* pool) {
  auto run = [&](auto* types, const std::vector<TypeAggregate>& aggs) {
    ParallelFor(
        pool, types->size(),
        [&](size_t i) {
          auto& t = (*types)[i];
          const TypeAggregate& a = aggs[i];
          for (const auto& key : t.property_keys) {
            PropertyConstraint& c = t.constraints[key];  // default-insert
            const PropertyAggregate* pa = nullptr;
            const uint64_t present = PresentCount(sym, a, key, &pa);
            c.mandatory = a.folded > 0 && present == a.folded;
          }
        },
        /*grain=*/1);
  };
  run(&schema->node_types, agg.node_types);
  run(&schema->edge_types, agg.edge_types);
}

void FinalizeDataTypes(const GraphSymbols& sym, const SchemaAggregates& agg,
                       SchemaGraph* schema, ThreadPool* pool) {
  auto run = [&](auto* types, const std::vector<TypeAggregate>& aggs) {
    ParallelFor(
        pool, types->size(),
        [&](size_t i) {
          auto& t = (*types)[i];
          const TypeAggregate& a = aggs[i];
          for (const auto& key : t.property_keys) {
            const PropertyAggregate* pa = nullptr;
            PresentCount(sym, a, key, &pa);
            t.constraints[key].type =
                pa == nullptr ? DataType::kString : JoinTally(pa->type_counts);
          }
        },
        /*grain=*/1);
  };
  run(&schema->node_types, agg.node_types);
  run(&schema->edge_types, agg.edge_types);
}

void FinalizeCardinalities(const SchemaAggregates& agg, SchemaGraph* schema,
                           ThreadPool* pool) {
  ParallelFor(
      pool, schema->edge_types.size(),
      [&](size_t i) {
        SchemaEdgeType& t = schema->edge_types[i];
        const TypeAggregate& a = agg.edge_types[i];
        t.max_out_degree = static_cast<size_t>(a.max_out());
        t.max_in_degree = static_cast<size_t>(a.max_in());
        t.cardinality = ClassifyCardinality(t.max_out_degree, t.max_in_degree);
      },
      /*grain=*/1);
}

void PublishAggregateGauges(const SchemaAggregates& agg) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("pghive.aggregates.node_types")
      ->Set(static_cast<int64_t>(agg.node_types.size()));
  reg.GetGauge("pghive.aggregates.edge_types")
      ->Set(static_cast<int64_t>(agg.edge_types.size()));
  reg.GetGauge("pghive.aggregates.folded_instances")
      ->Set(static_cast<int64_t>(agg.FoldedInstances()));
  reg.GetGauge("pghive.aggregates.key_entries")
      ->Set(static_cast<int64_t>(agg.KeyEntries()));
  reg.GetGauge("pghive.aggregates.degree_entries")
      ->Set(static_cast<int64_t>(agg.DegreeEntries()));
  reg.GetGauge("pghive.aggregates.approx_bytes")
      ->Set(static_cast<int64_t>(agg.ApproxBytes()));
}

}  // namespace pghive
