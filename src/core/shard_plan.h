// Signature → shard assignment for the sharded incremental Feed path.
//
// A ShardPlan maps every (label-set, key-set) signature to one of N shards
// via a stable hash of the signature's CONTENT identity (the packed
// label-set/key-set token pair from SignaturePool::shard_key), never of the
// dense SignatureId itself — interning order depends on insertion order
// across batches, but the set-token pair is canonical, so the same logical
// signature lands on the same shard no matter when it was first seen.
//
// Determinism contract: N is a function of PipelineOptions::feed_shards
// only — never of the thread count — so the partition of work into shards,
// and therefore the ascending-shard-order merge, is identical whether the
// shards execute on 1 thread or 64. feed_shards <= 1 collapses to a single
// shard and the engine takes the original unsharded code paths, which keeps
// the seed-path output trivially byte-identical.
//
// The plan is summarized by a fingerprint (version + shard count under
// FNV-1a) persisted in PGHS snapshot metadata so `inspect-state` and
// recovery can verify the layout survived a resume.

#ifndef PGHIVE_CORE_SHARD_PLAN_H_
#define PGHIVE_CORE_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>

#include "common/hash.h"

namespace pghive {

class ShardPlan {
 public:
  /// Hashing scheme version; bump when ShardOf changes so persisted
  /// fingerprints from older layouts read as different.
  static constexpr uint32_t kVersion = 1;

  /// Upper bound on configurable shard counts. Far above any useful value
  /// (shards are merged sequentially); bounds per-batch partial vectors.
  static constexpr int kMaxShards = 4096;

  /// num_shards <= 1 (including the default) means "unsharded".
  explicit ShardPlan(int num_shards = 1)
      : num_shards_(num_shards < 1          ? 1
                    : num_shards > kMaxShards ? kMaxShards
                                              : num_shards) {}

  size_t num_shards() const { return static_cast<size_t>(num_shards_); }
  bool sharded() const { return num_shards_ > 1; }

  /// Shard for a signature's packed content key (see
  /// SignaturePool::shard_key). SplitMix64 finalizer, no runtime-dependent
  /// seeding: stable across processes, runs and platforms, so a plan
  /// reconstructed from a persisted shard count alone reproduces the
  /// assignment exactly.
  size_t ShardOf(uint64_t shard_key) const {
    return static_cast<size_t>(Mix64(shard_key) %
                               static_cast<uint64_t>(num_shards_));
  }

  /// Stable layout fingerprint (version + shard count), persisted in PGHS
  /// snapshot metadata. Two plans with equal fingerprints assign every
  /// signature identically.
  uint64_t Fingerprint() const;

 private:
  int num_shards_;
};

}  // namespace pghive

#endif  // PGHIVE_CORE_SHARD_PLAN_H_
