#include "core/label_alias.h"

#include "common/string_util.h"

namespace pghive {

void AliasTable::Add(const std::string& alias, const std::string& canonical) {
  if (alias == canonical) return;
  aliases_[alias] = canonical;
}

Result<std::string> AliasTable::Resolve(const std::string& label) const {
  std::string current = label;
  // Follow the chain; more hops than table entries means a cycle.
  for (size_t hops = 0; hops <= aliases_.size(); ++hops) {
    auto it = aliases_.find(current);
    if (it == aliases_.end()) return current;
    current = it->second;
  }
  return Status::FailedPrecondition("alias cycle involving label '" + label +
                                    "'");
}

Result<AliasTable> AliasTable::FromText(const std::string& text) {
  AliasTable table;
  size_t line_no = 0;
  for (const auto& raw : Split(text, '\n')) {
    ++line_no;
    std::string line(Trim(raw));
    if (line.empty() || line[0] == '#') continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("alias line " + std::to_string(line_no) +
                                " is not 'alias=canonical': " + line);
    }
    std::string alias(Trim(line.substr(0, eq)));
    std::string canonical(Trim(line.substr(eq + 1)));
    if (alias.empty() || canonical.empty()) {
      return Status::ParseError("alias line " + std::to_string(line_no) +
                                " has an empty side");
    }
    table.Add(alias, canonical);
  }
  return table;
}

namespace {

Result<std::set<std::string>> ResolveSet(const std::set<std::string>& labels,
                                         const AliasTable& table) {
  std::set<std::string> out;
  for (const auto& l : labels) {
    PGHIVE_ASSIGN_OR_RETURN(std::string canonical, table.Resolve(l));
    out.insert(std::move(canonical));
  }
  return out;
}

}  // namespace

Result<PropertyGraph> ApplyAliases(const PropertyGraph& g,
                                   const AliasTable& table) {
  PropertyGraph out = g;
  if (table.empty()) return out;
  for (size_t i = 0; i < out.num_nodes(); ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::set<std::string> resolved,
                            ResolveSet(out.node(i).labels, table));
    out.SetNodeLabels(i, resolved);
  }
  for (size_t i = 0; i < out.num_edges(); ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::set<std::string> resolved,
                            ResolveSet(out.edge(i).labels, table));
    out.SetEdgeLabels(i, resolved);
  }
  return out;
}

}  // namespace pghive
