// The PG-HIVE schema discovery pipeline (paper §4, Algorithm 1).
//
// Stages per batch: load -> preprocess (label-embedding + binary property
// vectors, §4.1) -> LSH clustering (ELSH or MinHash, §4.2) -> type
// extraction & merging (Algorithm 2, §4.3) -> optional post-processing
// (constraints, datatypes, cardinalities, §4.4). The static mode runs a
// single batch covering the whole graph; core/incremental.h streams batches
// through the same ProcessBatch entry point.

#ifndef PGHIVE_CORE_PIPELINE_H_
#define PGHIVE_CORE_PIPELINE_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "core/aggregates.h"
#include "core/feature_encoder.h"
#include "core/datatype_inference.h"
#include "core/schema.h"
#include "core/shard_plan.h"
#include "core/type_extraction.h"
#include "graph/property_graph.h"
#include "lsh/adaptive_params.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash_lsh.h"
#include "runtime/thread_pool.h"
#include "text/label_embedder.h"

namespace pghive {

/// The two LSH clustering backends evaluated in the paper.
enum class ClusteringMethod { kElsh, kMinHash };

const char* ClusteringMethodName(ClusteringMethod m);

struct PipelineOptions {
  ClusteringMethod method = ClusteringMethod::kElsh;

  /// Label embedding (Word2Vec by default, §4.1).
  LabelEmbedderOptions embedding;

  /// Feature-encoding knobs.
  FeatureEncoderOptions encoder;

  /// theta and merge behaviour (Algorithm 2).
  TypeExtractionOptions extraction;

  /// When true (default) b and T are derived from the data (§4.2);
  /// otherwise the explicit elsh/minhash options below are used.
  bool adaptive_parameters = true;
  AdaptiveTuning adaptive_tuning;
  EuclideanLshOptions elsh;
  MinHashLshOptions minhash;

  /// Post-processing toggle (Algorithm 1 lines 7-10) and sampling options.
  bool post_process = true;
  DataTypeInferenceOptions datatypes;

  /// When true (default) post-processing finalizes from delta-maintained
  /// mergeable aggregates (core/aggregates.h) instead of rescanning every
  /// assigned instance: the incremental pipeline folds each batch in
  /// O(batch), and the one-shot pipeline builds the aggregates in a single
  /// chunked parallel pass. Output is bit-identical to the rescan passes;
  /// the flag exists for A/B benchmarking and as an escape hatch. Not part
  /// of the options fingerprint (output-neutral).
  bool aggregate_post_process = true;

  /// Worker threads for the data-parallel stages (encoding, LSH hashing,
  /// datatype scans): 0 = hardware concurrency, 1 (default) = the original
  /// sequential loops, no pool created. Any value yields a bit-identical
  /// SchemaGraph — the runtime's deterministic ordered reductions make the
  /// output independent of the thread count (see runtime/parallel.h).
  /// Word2Vec training is intentionally NOT parallelized: its SGD updates
  /// are order-dependent, so sharding them would break seed-stable
  /// embeddings.
  int num_threads = 1;

  /// Signature shards for the parallel incremental Feed path (see
  /// core/shard_plan.h): each batch's clustering, aggregate fold and
  /// retractions are partitioned by signature across this many shards and
  /// merged in ascending shard order. The shard count — not the thread
  /// count — fixes the work partition, so output is bit-identical at any
  /// parallelism; <= 1 (default) keeps the unsharded sequential code
  /// paths. Not part of the options fingerprint (output-neutral), but the
  /// plan fingerprint is persisted in PGHS metadata so resume can verify
  /// layout stability.
  int feed_shards = 1;

  uint64_t seed = 42;
};

/// Wall-clock seconds per pipeline stage of the most recent batch (plus
/// post-processing when it ran). Since the observability layer landed this
/// is a thin view over the pipeline.* spans (obs/trace.h): each field is
/// filled by the matching stage span's duration, so the struct, the JSONL
/// span_stats and the Chrome trace can never disagree. Feeds the
/// perf-trajectory baseline that bench/micro_pipeline writes to
/// BENCH_pipeline.json.
struct StageTimings {
  double embed_train = 0.0;    // Word2Vec over the batch label corpus
  double encode_nodes = 0.0;   // feature encoding, nodes
  double cluster_nodes = 0.0;  // LSH keys + bucket clustering, nodes
  double extract_nodes = 0.0;  // Algorithm 2 merge, nodes
  double encode_edges = 0.0;
  double cluster_edges = 0.0;
  double extract_edges = 0.0;
  // Sub-kernel timings of the hot path, so each SoA/SIMD/union-find lever
  // is individually visible in BENCH_pipeline.json. encode_*_embed is the
  // representative encoding loop inside encode_* (the remainder is key
  // indexing + signature grouping). cluster_*_project is LSH key
  // computation over representatives (ELSH dot-product projections or
  // MinHash permutation min-folds); cluster_*_hash is bucket grouping +
  // union-find merge + fan-out. The sharded Feed path interleaves project
  // and hash inside its shard workers, so there the sub-timings stay 0.
  double encode_nodes_embed = 0.0;
  double encode_edges_embed = 0.0;
  double cluster_nodes_project = 0.0;
  double cluster_nodes_hash = 0.0;
  double cluster_edges_project = 0.0;
  double cluster_edges_hash = 0.0;
  double post_process = 0.0;   // constraints + datatypes + cardinalities
  // Sub-timings of post_process (they sum to roughly post_process; the
  // remainder is dispatch overhead). post_fold is the aggregate build /
  // delta fold; the other three are the per-pass finalizations (or the
  // legacy rescan passes when aggregate_post_process is off).
  double post_fold = 0.0;
  double post_constraints = 0.0;
  double post_datatypes = 0.0;
  double post_cardinalities = 0.0;
};

/// Diagnostics of the most recent batch (exposed for Figure 6 and tests).
struct BatchDiagnostics {
  AdaptiveLshParams node_params;
  AdaptiveLshParams edge_params;
  size_t node_clusters = 0;  // raw LSH clusters before merging
  size_t edge_clusters = 0;
  StageTimings timings;
};

class PgHivePipeline {
 public:
  explicit PgHivePipeline(PipelineOptions options = {});

  const PipelineOptions& options() const { return options_; }

  /// Static schema discovery: one batch over the whole graph, then
  /// post-processing (when enabled).
  Result<SchemaGraph> DiscoverSchema(const PropertyGraph& g);

  /// Runs preprocess -> clustering -> type extraction for one batch,
  /// merging into `schema` (Algorithm 1 lines 3-6 + 11). Post-processing is
  /// NOT applied here; call PostProcess when needed.
  Status ProcessBatch(const GraphBatch& batch, SchemaGraph* schema);

  /// Constraint, datatype and cardinality inference over the instances
  /// currently assigned in `schema` (Algorithm 1 lines 7-10). Builds a
  /// transient aggregate state (or rescans, when aggregate_post_process is
  /// off) — callers holding maintained aggregates use the overload below.
  void PostProcess(const PropertyGraph& g, SchemaGraph* schema) const;

  /// Post-processing from caller-maintained aggregates (core/incremental.h
  /// folds them batch by batch). `aggregates` may be null or inconsistent
  /// with `schema` — the pipeline then builds a transient aggregate state
  /// in one chunked parallel pass (or, with aggregate_post_process off,
  /// runs the legacy rescan passes). The finalized schema is bit-identical
  /// on every path.
  void PostProcessWithAggregates(const PropertyGraph& g,
                                 const SchemaAggregates* aggregates,
                                 SchemaGraph* schema) const;

  const BatchDiagnostics& last_diagnostics() const { return diagnostics_; }

  /// The worker pool behind the parallel stages; null while
  /// options().num_threads resolves to 1 (sequential mode). Lazily created
  /// on the first batch.
  ThreadPool* thread_pool() const { return pool_.get(); }

  /// Signature → shard assignment from options().feed_shards; a 1-shard
  /// plan (sharded() == false) means the unsharded code paths run.
  const ShardPlan& shard_plan() const { return shard_plan_; }

 private:
  /// Resolves options_.num_threads and creates the pool when > 1.
  ThreadPool* EnsurePool() const;

  PipelineOptions options_;
  ShardPlan shard_plan_;
  // mutable: the const PostProcess records its wall-clock in the timings.
  mutable BatchDiagnostics diagnostics_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// Label corpus restricted to one batch (the incremental pipeline trains
/// its embedder on the data it has seen in the batch).
std::vector<std::vector<std::string>> BuildBatchLabelCorpus(
    const GraphBatch& batch);

}  // namespace pghive

#endif  // PGHIVE_CORE_PIPELINE_H_
