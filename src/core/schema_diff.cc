#include "core/schema_diff.h"

#include <algorithm>

#include "common/string_util.h"

namespace pghive {

bool TypeChange::Empty() const {
  return added_labels.empty() && removed_labels.empty() &&
         added_properties.empty() && removed_properties.empty() &&
         became_optional.empty() && became_mandatory.empty() &&
         datatype_changes.empty() && cardinality_change.empty() &&
         added_source_labels.empty() && added_target_labels.empty();
}

bool SchemaDiff::Empty() const {
  return added_node_types.empty() && removed_node_types.empty() &&
         added_edge_types.empty() && removed_edge_types.empty() &&
         changed_types.empty();
}

namespace {

std::set<std::string> Minus(const std::set<std::string>& a,
                            const std::set<std::string>& b) {
  std::set<std::string> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::inserter(out, out.begin()));
  return out;
}

// Constraint-level comparison shared by node and edge types.
template <typename TypeT>
void DiffConstraints(const TypeT& from, const TypeT& to, TypeChange* change) {
  for (const auto& [key, to_c] : to.constraints) {
    auto it = from.constraints.find(key);
    if (it == from.constraints.end()) continue;  // covered by added_properties
    const PropertyConstraint& from_c = it->second;
    if (from_c.mandatory && !to_c.mandatory) {
      change->became_optional.push_back(key);
    } else if (!from_c.mandatory && to_c.mandatory) {
      change->became_mandatory.push_back(key);
    }
    if (from_c.type != to_c.type) {
      change->datatype_changes.push_back(std::string(key) + ": " +
                                         DataTypeName(from_c.type) + " -> " +
                                         DataTypeName(to_c.type));
    }
  }
}

// Finds the `from`-side counterpart of a `to`-side type.
const SchemaNodeType* MatchNodeType(const SchemaGraph& from,
                                    const SchemaNodeType& t) {
  for (const auto& candidate : from.node_types) {
    if (t.is_abstract || candidate.labels.empty()) {
      if (candidate.name == t.name) return &candidate;
    } else if (candidate.labels == t.labels) {
      return &candidate;
    }
  }
  return nullptr;
}

const SchemaEdgeType* MatchEdgeType(const SchemaGraph& from,
                                    const SchemaEdgeType& t) {
  const SchemaEdgeType* label_match = nullptr;
  for (const auto& candidate : from.edge_types) {
    if (t.is_abstract || candidate.labels.empty()) {
      if (candidate.name == t.name) return &candidate;
      continue;
    }
    if (candidate.labels != t.labels) continue;
    // Prefer the exact name (covers duplicate-label types); fall back to
    // the first label match.
    if (candidate.name == t.name) return &candidate;
    if (label_match == nullptr) label_match = &candidate;
  }
  return label_match;
}

}  // namespace

SchemaDiff DiffSchemas(const SchemaGraph& from, const SchemaGraph& to) {
  SchemaDiff diff;

  // Node types.
  for (const auto& t : to.node_types) {
    const SchemaNodeType* old = MatchNodeType(from, t);
    if (old == nullptr) {
      diff.added_node_types.push_back(t.name);
      continue;
    }
    TypeChange change;
    change.name = t.name;
    change.is_edge = false;
    change.added_labels = Minus(t.labels, old->labels);
    change.removed_labels = Minus(old->labels, t.labels);
    change.added_properties = Minus(t.property_keys, old->property_keys);
    change.removed_properties = Minus(old->property_keys, t.property_keys);
    DiffConstraints(*old, t, &change);
    if (!change.Empty()) diff.changed_types.push_back(std::move(change));
  }
  for (const auto& t : from.node_types) {
    if (MatchNodeType(to, t) == nullptr) {
      diff.removed_node_types.push_back(t.name);
    }
  }

  // Edge types.
  for (const auto& t : to.edge_types) {
    const SchemaEdgeType* old = MatchEdgeType(from, t);
    if (old == nullptr) {
      diff.added_edge_types.push_back(t.name);
      continue;
    }
    TypeChange change;
    change.name = t.name;
    change.is_edge = true;
    change.added_labels = Minus(t.labels, old->labels);
    change.removed_labels = Minus(old->labels, t.labels);
    change.added_properties = Minus(t.property_keys, old->property_keys);
    change.removed_properties = Minus(old->property_keys, t.property_keys);
    change.added_source_labels = Minus(t.source_labels, old->source_labels);
    change.added_target_labels = Minus(t.target_labels, old->target_labels);
    DiffConstraints(*old, t, &change);
    if (old->cardinality != t.cardinality &&
        old->cardinality != SchemaCardinality::kUnknown &&
        t.cardinality != SchemaCardinality::kUnknown) {
      change.cardinality_change =
          std::string(SchemaCardinalityName(old->cardinality)) + " -> " +
          SchemaCardinalityName(t.cardinality);
    }
    if (!change.Empty()) diff.changed_types.push_back(std::move(change));
  }
  for (const auto& t : from.edge_types) {
    if (MatchEdgeType(to, t) == nullptr) {
      diff.removed_edge_types.push_back(t.name);
    }
  }
  return diff;
}

std::string SchemaDiff::ToString() const {
  if (Empty()) return "no changes\n";
  std::string out;
  auto list = [&out](const char* title, const std::vector<std::string>& v) {
    if (v.empty()) return;
    out += std::string(title) + ": " + Join(v, ", ") + "\n";
  };
  list("+ node types", added_node_types);
  list("- node types", removed_node_types);
  list("+ edge types", added_edge_types);
  list("- edge types", removed_edge_types);
  for (const auto& c : changed_types) {
    out += std::string("~ ") + (c.is_edge ? "edge " : "node ") + c.name + "\n";
    auto sub = [&out](const char* title, const std::set<std::string>& v) {
      if (v.empty()) return;
      out += "    " + std::string(title) + ": " + Join(v, ", ") + "\n";
    };
    sub("+labels", c.added_labels);
    sub("-labels", c.removed_labels);
    sub("+properties", c.added_properties);
    sub("-properties", c.removed_properties);
    sub("+source labels", c.added_source_labels);
    sub("+target labels", c.added_target_labels);
    if (!c.became_optional.empty()) {
      out += "    became optional: " + Join(c.became_optional, ", ") + "\n";
    }
    if (!c.became_mandatory.empty()) {
      out += "    became mandatory: " + Join(c.became_mandatory, ", ") + "\n";
    }
    if (!c.datatype_changes.empty()) {
      out += "    datatypes: " + Join(c.datatype_changes, "; ") + "\n";
    }
    if (!c.cardinality_change.empty()) {
      out += "    cardinality: " + c.cardinality_change + "\n";
    }
  }
  return out;
}

}  // namespace pghive
