// Feature encoding (paper §4.1, "Representation").
//
// Nodes:  f_v = [ w_v (d-dim label embedding) || b_v (K-dim property bits) ]
// Edges:  f_e = [ w_e || w_src || w_tgt || b_e (Q-dim property bits) ]
//
// Unlabeled elements use the zero vector in the embedding block; multi-label
// sets are sorted, concatenated and embedded as one token. For MinHash the
// same information is expressed as a token set ("label:", "prop:", "src:",
// "tgt:" prefixed strings) whose Jaccard similarity mirrors the structural
// similarity of the elements.
//
// Storage is structure-of-arrays over the signature-group REPRESENTATIVES:
// one 32-byte-aligned zero-padded row per distinct signature in a single
// contiguous matrix (simd/aligned.h), and one flat pool of pre-hashed
// MinHash tokens with prefix-sum offsets. Non-representative members carry
// no per-element payload at all — consumers index the representative data
// through sig_of, so the old O(elements) vector/token fan-out copies are
// gone and the LSH kernels stream dense aligned memory.

#ifndef PGHIVE_CORE_FEATURE_ENCODER_H_
#define PGHIVE_CORE_FEATURE_ENCODER_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"
#include "runtime/thread_pool.h"
#include "simd/aligned.h"
#include "text/label_embedder.h"

namespace pghive {

/// Encoded element population. ids/sig_of are parallel arrays over the
/// batch's element slots; features/token pools are indexed by signature
/// group (representative).
struct EncodedElements {
  /// Global element ids (NodeId or EdgeId) per position.
  std::vector<size_t> ids;
  /// Signature fan-out. An element's encoding is a pure function of its
  /// signature — nodes: the interned (label-set, key-set); edges: that plus
  /// both endpoint tokens — so each distinct signature is encoded once.
  /// sig_of[slot] is the element's dense signature-group index within this
  /// batch; reps[group] is the slot of the group's first member (the one
  /// actually encoded). Groups are created in first-member slot order, so
  /// rep indices ascend with their first-member slots.
  std::vector<size_t> sig_of;
  std::vector<size_t> reps;

  /// Dense ELSH vectors of the representatives: reps.size() rows of dim
  /// floats each, rows 32-byte aligned and zero-padded to features.stride()
  /// (the padding is semantically "no extra property bits"). Group g's
  /// vector is features.row(g); slot i's vector is features.row(sig_of[i]).
  simd::AlignedRowMatrix features;
  /// Logical vector width (embedding block + property-bit block).
  size_t dim = 0;

  /// MinHash token sets of the representatives, pre-hashed (HashString over
  /// the token text — exactly what MinHashLsh::Signature hashes first).
  /// Group g's tokens are token_hashes[token_begin[g] .. token_begin[g+1]).
  std::vector<uint64_t> token_hashes;
  std::vector<uint32_t> token_begin;  // size reps.size() + 1

  /// Wall-clock of the representative encoding loop (the embed sub-kernel
  /// span); the pipeline copies it into StageTimings.
  double embed_seconds = 0.0;

  size_t num_elements() const { return ids.size(); }
  size_t num_groups() const { return reps.size(); }

  /// Materialized copy of slot i's feature vector (dim floats) — for
  /// diagnostics and tests; the hot path reads features.row(sig_of[i]).
  std::vector<float> VectorOf(size_t slot) const;
  /// Materialized copy of slot i's token-hash set.
  std::vector<uint64_t> TokensOf(size_t slot) const;
};

struct FeatureEncoderOptions {
  /// Scales the label-embedding block relative to the binary block, so the
  /// unit-norm embedding separates types at least as strongly as several
  /// property-bit differences. The ablation bench explores this.
  double label_weight = 2.0;
  /// How many tokens the label contributes to the MinHash token set
  /// (duplicated "label:X#i" tokens approximate a weighted MinHash, keeping
  /// the label influential next to larger property-token sets).
  int minhash_label_copies = 3;
};

/// Encodes the nodes/edges of a batch. The property-key universe is derived
/// from the batch itself (vectors are only ever compared within one
/// clustering pass, so per-batch key spaces are sound).
class FeatureEncoder {
 public:
  /// `pool` (optional, not owned) parallelizes the per-group encoding
  /// loops; groups are written to their own row/slice, so the encoding is
  /// bit-identical at any thread count. Null = sequential.
  FeatureEncoder(const LabelEmbedder* embedder,
                 FeatureEncoderOptions options = {},
                 ThreadPool* pool = nullptr);

  /// Encodes nodes [batch.node_begin, batch.node_end).
  EncodedElements EncodeNodes(const GraphBatch& batch) const;

  /// Maps an unlabeled node to the endpoint label set of its discovered
  /// type: the type's label set when it merged into a labeled type (so the
  /// endpoint looks exactly like a labeled one), or {"~ABSTRACT_n"} for
  /// abstract types. Labeled nodes are not in the map.
  using EndpointLabelMap = std::unordered_map<size_t, std::set<std::string>>;

  /// Returns the token describing an endpoint node for edge encoding: the
  /// canonical label token of the node's labels, or of its discovered
  /// type's endpoint label set (empty string when neither is available).
  /// PG-HIVE clusters nodes before edges, so edges of unlabeled graphs can
  /// still see typed endpoints — without this, all property-less edges of a
  /// fully-unlabeled graph become indistinguishable.
  static std::string EndpointToken(const Node& node,
                                   const EndpointLabelMap& endpoint_labels);

  /// Encodes edges [batch.edge_begin, batch.edge_end); endpoint tokens come
  /// from the nodes' labels, falling back to `endpoint_labels`.
  EncodedElements EncodeEdges(const GraphBatch& batch,
                              const EndpointLabelMap& endpoint_labels) const;

 private:
  const LabelEmbedder* embedder_;  // not owned
  FeatureEncoderOptions options_;
  ThreadPool* pool_;  // not owned; null = sequential
};

}  // namespace pghive

#endif  // PGHIVE_CORE_FEATURE_ENCODER_H_
