// Incremental schema discovery (paper §4.6).
//
// IncrementalDiscoverer streams batches through the same
// preprocess/cluster/extract pipeline and merges each batch's types into the
// evolving schema via Algorithm 2, so S_i ⊑ S_{i+1} forms a monotone chain
// (no label, property or endpoint is ever lost). Post-processing can run
// after every batch (Algorithm 1's postProcessing flag) or only at the end.

#ifndef PGHIVE_CORE_INCREMENTAL_H_
#define PGHIVE_CORE_INCREMENTAL_H_

#include <vector>

#include "core/pipeline.h"
#include "core/retraction.h"

namespace pghive {

struct IncrementalOptions {
  PipelineOptions pipeline;
  /// Run constraint/datatype/cardinality inference after every batch rather
  /// than only on Finish() (paper: optional postProcessing flag).
  bool post_process_each_batch = false;
};

class IncrementalDiscoverer {
 public:
  explicit IncrementalDiscoverer(IncrementalOptions options = {});

  /// Processes one new batch and merges it into the running schema.
  Status Feed(const GraphBatch& batch);

  /// Processes one MUTATION batch: first retracts `deleted_nodes` /
  /// `deleted_edges` from the evolving schema and its aggregates
  /// (core/retraction.h — instance lists compact, derived sets shrink,
  /// empty types retire), then merges `batch`'s appended elements exactly
  /// like Feed(). O(batch) amortized — no rescan of the accumulated graph.
  /// Updates are delete-then-reinsert: the caller tombstones the old id in
  /// the deletion lists and appends the replacement to `batch` (see
  /// graph/mutations.h for the canonical order and the endpoint-closure
  /// contract). Requires aggregate_post_process (retraction is
  /// aggregate-based); fails with FailedPrecondition otherwise, and with
  /// InvalidArgument on an unknown or double-deleted id.
  Status FeedMutations(const GraphBatch& batch,
                       const std::vector<NodeId>& deleted_nodes,
                       const std::vector<EdgeId>& deleted_edges);

  /// Restores previously persisted state (schema + per-batch timings +
  /// optionally the delta-maintained aggregates), so a recovered process
  /// resumes exactly where it stopped: the next Feed() merges into the
  /// restored schema as if this discoverer had processed every earlier
  /// batch itself (src/store/ uses this on recovery). Aggregates that don't
  /// match the schema (or an empty default) are discarded — the next fold
  /// rebuilds them from the schema's instance lists.
  void RestoreState(SchemaGraph schema, std::vector<double> batch_seconds,
                    SchemaAggregates aggregates = {});

  /// Number of batches processed so far.
  size_t batches_processed() const { return batch_seconds_.size(); }

  /// Wall-clock seconds each Feed() call took (Figure 7 series).
  const std::vector<double>& batch_seconds() const { return batch_seconds_; }

  /// The schema as of the last processed batch (constraints only filled if
  /// post_process_each_batch or after Finish()).
  const SchemaGraph& schema() const { return schema_; }

  /// Final post-processing pass over everything fed so far; returns the
  /// completed schema. `g` must be the graph the batches sliced.
  const SchemaGraph& Finish(const PropertyGraph& g);

  /// What Finish(g) would return, computed on a copy — the engine's own
  /// schema, aggregates and timings are untouched, so feeding can continue
  /// on the exact path an uninterrupted one-shot run takes. The serving
  /// daemon publishes one of these per applied batch as an epoch snapshot.
  SchemaGraph FinishedCopy(const PropertyGraph& g) const;

  /// Diagnostics of the most recent batch (LSH parameters, cluster counts,
  /// stage timings) — persisted by the durable store's snapshots.
  const BatchDiagnostics& last_diagnostics() const {
    return pipeline_.last_diagnostics();
  }

  /// The pipeline's worker pool (null in sequential mode); the durable
  /// store reuses it for parallel snapshot encoding.
  ThreadPool* thread_pool() const { return pipeline_.thread_pool(); }

  /// The delta-maintained post-processing aggregates, folded forward on
  /// every Feed (meaningful only while aggregates_valid()). The durable
  /// store persists them so recovery skips the rebuild.
  const SchemaAggregates& aggregates() const { return aggregates_; }

  /// False after an instance list shrank under the aggregates (external
  /// schema surgery) — post-processing then rebuilds transient aggregates
  /// until RestoreState resets the discoverer.
  bool aggregates_valid() const { return aggregates_valid_; }

  /// Wall-clock seconds the post-processing of each Feed() took (0 when
  /// post_process_each_batch is off) — the incremental-scaling bench series.
  const std::vector<double>& post_process_seconds() const {
    return post_process_seconds_;
  }

 private:
  /// The maintained aggregates when they are usable, else null (the
  /// pipeline then rebuilds transiently).
  const SchemaAggregates* AggregatesOrNull() const;

  IncrementalOptions options_;
  PgHivePipeline pipeline_;
  SchemaGraph schema_;
  SchemaAggregates aggregates_;
  bool aggregates_valid_ = true;
  std::vector<double> batch_seconds_;
  std::vector<double> post_process_seconds_;
  /// Element->type index for retraction; built lazily on the first
  /// FeedMutations and re-synced (from per-type watermarks) before each
  /// retraction, so insert-only streams pay nothing for it.
  RetractionIndex retraction_index_;
  bool mutations_seen_ = false;
};

/// Merges two independently discovered schemas into the least general
/// schema covering both (paper §4.6 "Schema merging"): node/edge types merge
/// by identical label set; unlabeled types merge into labeled then unlabeled
/// ones by property Jaccard; leftovers stay ABSTRACT.
SchemaGraph MergeSchemas(const SchemaGraph& s1, const SchemaGraph& s2,
                         const TypeExtractionOptions& options = {});

}  // namespace pghive

#endif  // PGHIVE_CORE_INCREMENTAL_H_
