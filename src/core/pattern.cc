#include "core/pattern.h"

#include <algorithm>

namespace pghive {

NodePattern PatternOf(const Node& n) {
  NodePattern p;
  p.labels = n.labels;
  for (const auto& [k, v] : n.properties) p.property_keys.insert(k);
  return p;
}

EdgePattern PatternOf(const PropertyGraph& g, const Edge& e) {
  EdgePattern p;
  p.labels = e.labels;
  for (const auto& [k, v] : e.properties) p.property_keys.insert(k);
  p.source_labels = g.node(e.source).labels;
  p.target_labels = g.node(e.target).labels;
  return p;
}

std::vector<NodePattern> DistinctNodePatterns(const PropertyGraph& g) {
  std::set<NodePattern> set;
  for (const auto& n : g.nodes()) set.insert(PatternOf(n));
  return {set.begin(), set.end()};
}

std::vector<EdgePattern> DistinctEdgePatterns(const PropertyGraph& g) {
  std::set<EdgePattern> set;
  for (const auto& e : g.edges()) set.insert(PatternOf(g, e));
  return {set.begin(), set.end()};
}

}  // namespace pghive
