// Schema serialization (paper §4.5): PG-Schema (LOOSE and STRICT) and XSD.
//
// PG-Schema has no finalized concrete syntax; like the paper, we emit the
// illustrative grammar of Angles et al. (2023):
//
//   CREATE GRAPH TYPE SocialGraph LOOSE {
//     (PersonType: Person {name STRING, gender STRING, bday DATE}),
//     (:PersonType)-[KnowsType: KNOWS {since OPTIONAL DATE}]->(:PersonType)
//   }
//
// STRICT mode additionally marks OPTIONAL properties, ABSTRACT types and
// cardinalities; LOOSE omits constraints so data may deviate.

#ifndef PGHIVE_CORE_SERIALIZATION_H_
#define PGHIVE_CORE_SERIALIZATION_H_

#include <string>

#include "core/schema.h"

namespace pghive {

enum class PgSchemaMode { kLoose, kStrict };

/// Renders the schema in the PG-Schema-style grammar.
std::string ToPgSchema(const SchemaGraph& schema, const std::string& graph_name,
                       PgSchemaMode mode);

/// Renders the schema as an XML Schema document: one complexType per node /
/// edge type, property elements typed with xs:* datatypes, minOccurs=0 for
/// optional properties.
std::string ToXsd(const SchemaGraph& schema);

}  // namespace pghive

#endif  // PGHIVE_CORE_SERIALIZATION_H_
