// Edge cardinality inference (paper §4.4, "Cardinalities").
//
// For each edge type we compute the maximum out-degree (distinct targets per
// source) and maximum in-degree (distinct sources per target) over the
// type's instances and classify, following the paper's Example 8 (WORKS_AT:
// each Person works at one Org, an Org has many employees -> N:1):
//   (max_out, max_in) = (1, 1) -> 0:1    (1, >1) -> N:1
//                       (>1, 1) -> 0:N   (>1, >1) -> M:N
// The values are sound upper bounds (§4.7); lower bounds would require
// scanning unconnected nodes, which the paper defers to future work.

#ifndef PGHIVE_CORE_CARDINALITY_H_
#define PGHIVE_CORE_CARDINALITY_H_

#include "core/schema.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"

namespace pghive {

/// Fills cardinality / max_out_degree / max_in_degree of every edge type.
/// Edge types are independent, so `pool` fans the per-type degree scans out
/// (null = sequential; output identical either way).
void ComputeCardinalities(const PropertyGraph& g, SchemaGraph* schema,
                          ThreadPool* pool = nullptr);

/// Classifies a (max_out, max_in) pair. Exposed for tests.
SchemaCardinality ClassifyCardinality(size_t max_out, size_t max_in);

}  // namespace pghive

#endif  // PGHIVE_CORE_CARDINALITY_H_
