#include "simd/kernels.h"

#include <limits>

#include "common/hash.h"

#if defined(PGHIVE_SIMD_X86)
#include <immintrin.h>
#endif

namespace pghive {
namespace simd {

double DotProductScalar(const float* a, const float* x, size_t width) {
  // Lane mapping d mod 8 and the left-to-right reduce below are the
  // bit-identity contract shared with DotProductAvx2 (see kernels.h).
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (size_t d = 0; d < width; ++d) {
    acc[d & 7] += static_cast<double>(a[d] * x[d]);
  }
  double sum = acc[0];
  for (int l = 1; l < 8; ++l) sum += acc[l];
  return sum;
}

void MinHashFoldScalar(const uint64_t* hashes, size_t num_hashes,
                       const uint64_t* salts, size_t num_salts,
                       uint64_t* sig) {
  for (size_t i = 0; i < num_salts; ++i) {
    sig[i] = std::numeric_limits<uint64_t>::max();
  }
  for (size_t j = 0; j < num_hashes; ++j) {
    const uint64_t h = hashes[j];
    for (size_t i = 0; i < num_salts; ++i) {
      const uint64_t v = Mix64(h ^ salts[i]);
      if (v < sig[i]) sig[i] = v;
    }
  }
}

#if defined(PGHIVE_SIMD_X86)

namespace {

/// Low 64 bits of a 64x64 multiply, 4 lanes. mul_epu32 only multiplies the
/// low 32-bit halves, so the high cross terms are assembled by hand; the
/// cross sum may wrap but only its low 32 bits survive the shift.
__attribute__((target("avx2"))) inline __m256i MulLo64(__m256i x, __m256i y) {
  const __m256i lo = _mm256_mul_epu32(x, y);
  const __m256i xh = _mm256_srli_epi64(x, 32);
  const __m256i yh = _mm256_srli_epi64(y, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(xh, y), _mm256_mul_epu32(x, yh));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// SplitMix64 finalizer (common/hash.h Mix64), 4 lanes.
__attribute__((target("avx2"))) inline __m256i Mix64x4(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = MulLo64(
      _mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = MulLo64(
      _mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// Unsigned 64-bit min, 4 lanes (AVX2 only has a signed 64-bit compare, so
/// both sides are sign-biased first).
__attribute__((target("avx2"))) inline __m256i MinU64x4(__m256i a, __m256i b) {
  const __m256i bias =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i a_gt_b = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                                            _mm256_xor_si256(b, bias));
  return _mm256_blendv_epi8(a, b, a_gt_b);
}

}  // namespace

__attribute__((target("avx2"))) double DotProductAvx2(const float* a,
                                                      const float* x,
                                                      size_t width) {
  // acc_lo holds lanes d mod 8 in {0..3}, acc_hi {4..7} — the same mapping
  // as DotProductScalar. Products are computed in FLOAT (matching the
  // scalar flavour and the pre-SoA code) and widened exactly to double.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  for (size_t d = 0; d < width; d += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_load_ps(a + d), _mm256_load_ps(x + d));
    acc_lo = _mm256_add_pd(acc_lo,
                           _mm256_cvtps_pd(_mm256_castps256_ps128(prod)));
    acc_hi = _mm256_add_pd(acc_hi,
                           _mm256_cvtps_pd(_mm256_extractf128_ps(prod, 1)));
  }
  alignas(32) double lanes[8];
  _mm256_store_pd(lanes, acc_lo);
  _mm256_store_pd(lanes + 4, acc_hi);
  double sum = lanes[0];
  for (int l = 1; l < 8; ++l) sum += lanes[l];
  return sum;
}

__attribute__((target("avx2"))) void MinHashFoldAvx2(const uint64_t* hashes,
                                                     size_t num_hashes,
                                                     const uint64_t* salts,
                                                     size_t num_salts,
                                                     uint64_t* sig) {
  size_t i = 0;
  for (; i + 4 <= num_salts; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(salts + i));
    __m256i m = _mm256_set1_epi64x(-1);
    for (size_t j = 0; j < num_hashes; ++j) {
      const __m256i h =
          _mm256_set1_epi64x(static_cast<long long>(hashes[j]));
      m = MinU64x4(m, Mix64x4(_mm256_xor_si256(h, s)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sig + i), m);
  }
  for (; i < num_salts; ++i) {
    uint64_t m = std::numeric_limits<uint64_t>::max();
    for (size_t j = 0; j < num_hashes; ++j) {
      const uint64_t v = Mix64(hashes[j] ^ salts[i]);
      if (v < m) m = v;
    }
    sig[i] = m;
  }
}

#endif  // PGHIVE_SIMD_X86

double DotProduct(const float* a, const float* x, size_t width) {
#if defined(PGHIVE_SIMD_X86)
  if (Enabled()) return DotProductAvx2(a, x, width);
#endif
  return DotProductScalar(a, x, width);
}

void MinHashFold(const uint64_t* hashes, size_t num_hashes,
                 const uint64_t* salts, size_t num_salts, uint64_t* sig) {
#if defined(PGHIVE_SIMD_X86)
  if (Enabled()) {
    MinHashFoldAvx2(hashes, num_hashes, salts, num_salts, sig);
    return;
  }
#endif
  MinHashFoldScalar(hashes, num_hashes, salts, num_salts, sig);
}

}  // namespace simd
}  // namespace pghive
