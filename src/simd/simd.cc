#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pghive {
namespace simd {
namespace {

std::atomic<int> g_force{static_cast<int>(Mode::kAuto)};

bool EnvDisabled() {
  const char* v = std::getenv("PGHIVE_SIMD");
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0 || std::strcmp(v, "scalar") == 0;
}

}  // namespace

bool Avx2Available() {
#if defined(PGHIVE_SIMD_X86)
  static const bool avail = __builtin_cpu_supports("avx2");
  return avail;
#else
  return false;
#endif
}

bool Enabled() {
  const Mode forced = static_cast<Mode>(g_force.load(std::memory_order_relaxed));
  if (forced == Mode::kScalar) return false;
  if (forced == Mode::kAvx2) return true;
  static const bool enabled = !EnvDisabled() && Avx2Available();
  return enabled;
}

void ForceMode(Mode mode) {
  g_force.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* ModeName() { return Enabled() ? "avx2" : "scalar"; }

}  // namespace simd
}  // namespace pghive
