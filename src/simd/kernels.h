// Hot-path SIMD kernels: ELSH dot-product projection and MinHash
// permutation min-reduction, each in a scalar and an AVX2 flavour that
// produce bit-identical results.
//
// Why bit-identity holds:
//
//   DotProduct — each term is the FLOAT product a[d]*x[d] (exactly the
//   rounding the pre-SoA sequential loop produced) widened exactly to
//   double, accumulated into 8 lanes with lane = d mod 8, then reduced
//   with one fixed left-to-right lane order. The scalar flavour uses 8
//   double accumulators with the same lane mapping and the same reduce,
//   so scalar and AVX2 perform the identical sequence of IEEE-754
//   operations. Zero padding (aligned.h) contributes +0.0 terms, and
//   +0.0 added to an accumulator that starts at +0.0 can never flip its
//   value or sign, so padded width is harmless. Widening float->double is
//   exact, and GCC/Clang cannot contract the float multiply with the
//   double add into an FMA (the intermediate float rounding is
//   observable), so -O2/-O3 codegen keeps the order.
//
//   MinHashFold — xor, SplitMix64 and unsigned min are exact integer
//   operations and min is associative/commutative, so ANY evaluation
//   order gives the same minima; the AVX2 flavour processes salts in
//   blocks of 4 with a scalar tail and is trivially equal to the scalar
//   token-major loop (which mirrors the pre-SoA code).
//
// Callers normally use the dispatching entry points (DotProduct,
// MinHashFold); the flavoured variants exist for the equivalence tests
// and the scalar-vs-SIMD bench sweep.

#ifndef PGHIVE_SIMD_KERNELS_H_
#define PGHIVE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/simd.h"

namespace pghive {
namespace simd {

/// Dot product over two float rows of `width` floats. `width` must be a
/// multiple of 8 (AlignedRowMatrix stride) and for the AVX2 flavour both
/// pointers must be 32-byte aligned. Returns the 8-lane / ordered-reduce
/// double sum described above.
double DotProduct(const float* a, const float* x, size_t width);
double DotProductScalar(const float* a, const float* x, size_t width);

/// sig[i] = min over tokens j of Mix64(hashes[j] ^ salts[i]), for
/// i in [0, num_salts). sig is fully overwritten; with no tokens every
/// entry is UINT64_MAX (the empty-set sentinel signature).
void MinHashFold(const uint64_t* hashes, size_t num_hashes,
                 const uint64_t* salts, size_t num_salts, uint64_t* sig);
void MinHashFoldScalar(const uint64_t* hashes, size_t num_hashes,
                       const uint64_t* salts, size_t num_salts, uint64_t* sig);

#if defined(PGHIVE_SIMD_X86)
/// AVX2 flavours; call only when Avx2Available(). Compiled with a
/// function-level target attribute, so no global -mavx2 is needed.
double DotProductAvx2(const float* a, const float* x, size_t width);
void MinHashFoldAvx2(const uint64_t* hashes, size_t num_hashes,
                     const uint64_t* salts, size_t num_salts, uint64_t* sig);
#endif

}  // namespace simd
}  // namespace pghive

#endif  // PGHIVE_SIMD_KERNELS_H_
