// Aligned structure-of-arrays storage for the hot-path kernels.
//
// AlignedRowMatrix is the column-block layout the SoA pass puts feature
// vectors and projection rows in: every row starts on a 32-byte boundary
// (one AVX2 register) and is padded with zeros to a multiple of 8 floats,
// so the SIMD kernels (simd/kernels.h) can stream whole rows in full
// 128-bit float loads with no tail handling. The zero padding is part of
// the contract: kernels may run over the padded width, and a padded lane
// contributes exact +0.0 terms that cannot change an IEEE-754 sum that
// starts from +0.0 (see kernels.h for the bit-identity argument).

#ifndef PGHIVE_SIMD_ALIGNED_H_
#define PGHIVE_SIMD_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace pghive {
namespace simd {

/// Rows × cols float matrix; rows are 32-byte aligned and zero-padded to a
/// stride of 8 floats. Move-only (rows can be megabytes; copies must be
/// explicit).
class AlignedRowMatrix {
 public:
  static constexpr size_t kAlignBytes = 32;
  static constexpr size_t kStrideFloats = kAlignBytes / sizeof(float);

  AlignedRowMatrix() = default;
  AlignedRowMatrix(size_t rows, size_t cols) { Reset(rows, cols); }
  ~AlignedRowMatrix() { std::free(data_); }

  AlignedRowMatrix(const AlignedRowMatrix&) = delete;
  AlignedRowMatrix& operator=(const AlignedRowMatrix&) = delete;
  AlignedRowMatrix(AlignedRowMatrix&& other) noexcept { *this = std::move(other); }
  AlignedRowMatrix& operator=(AlignedRowMatrix&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      rows_ = std::exchange(other.rows_, 0);
      cols_ = std::exchange(other.cols_, 0);
      stride_ = std::exchange(other.stride_, 0);
    }
    return *this;
  }

  /// Stride (in floats) a `cols`-wide row occupies: next multiple of 8.
  static size_t StrideFor(size_t cols) {
    return (cols + kStrideFloats - 1) / kStrideFloats * kStrideFloats;
  }

  /// Reallocates to rows × cols, all elements (and padding) zeroed.
  void Reset(size_t rows, size_t cols) {
    std::free(data_);
    rows_ = rows;
    cols_ = cols;
    stride_ = StrideFor(cols);
    const size_t bytes = rows_ * stride_ * sizeof(float);
    if (bytes == 0) {
      data_ = nullptr;
      return;
    }
    // stride_ is a multiple of 8 floats = 32 bytes, so `bytes` meets
    // aligned_alloc's size-multiple-of-alignment requirement.
    data_ = static_cast<float*>(std::aligned_alloc(kAlignBytes, bytes));
    std::memset(data_, 0, bytes);
  }

  float* row(size_t r) { return data_ + r * stride_; }
  const float* row(size_t r) const { return data_ + r * stride_; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Padded row width in floats; kernels iterate this far (padding is zero).
  size_t stride() const { return stride_; }
  size_t bytes() const { return rows_ * stride_ * sizeof(float); }

 private:
  float* data_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
};

}  // namespace simd
}  // namespace pghive

#endif  // PGHIVE_SIMD_ALIGNED_H_
