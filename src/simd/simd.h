// Runtime SIMD dispatch switch.
//
// Kernels in simd/kernels.h come in a scalar and an AVX2 flavour that are
// bit-identical by construction (same FP operation order); which one runs
// is decided once per process from:
//   1. the test/bench override (ForceMode), if set;
//   2. the PGHIVE_SIMD environment variable ("off"/"0" forces scalar);
//   3. whether the CPU actually supports AVX2.
// The AVX2 paths are compiled with function-level target attributes, so
// the build needs no -mavx2 flag and the binary stays runnable on
// non-AVX2 hosts.

#ifndef PGHIVE_SIMD_SIMD_H_
#define PGHIVE_SIMD_SIMD_H_

namespace pghive {
namespace simd {

// AVX2 kernels are only compiled on x86-64 GCC/Clang; elsewhere the
// dispatcher always picks scalar.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PGHIVE_SIMD_X86 1
#endif

enum class Mode {
  kAuto = 0,    // env + CPU detection (default)
  kScalar = 1,  // force the scalar kernels
  kAvx2 = 2,    // force AVX2 (test use only; caller must know the CPU has it)
};

/// True when the running CPU supports AVX2 (cached).
bool Avx2Available();

/// True when the AVX2 kernel flavour should run: ForceMode override if set,
/// else PGHIVE_SIMD env (off/0/false/scalar → false) AND Avx2Available().
bool Enabled();

/// Test/bench hook: override dispatch for the rest of the process (until the
/// next call). kAuto restores env+CPU behaviour.
void ForceMode(Mode mode);

/// "avx2" or "scalar" — what Enabled() currently resolves to.
const char* ModeName();

}  // namespace simd
}  // namespace pghive

#endif  // PGHIVE_SIMD_SIMD_H_
