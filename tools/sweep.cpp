// Scratch: quick F1 sweep over all datasets / noise / label availability.

#include <cstdio>

#include "eval/experiment.h"

using namespace pghive;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.3;
  ExperimentConfig config;
  config.size_scale = scale;
  for (const auto& spec : AllDatasetSpecs()) {
    auto clean = GenerateForExperiment(spec, config);
    if (!clean.ok()) {
      std::printf("%s: generation failed: %s\n", spec.name.c_str(),
                  clean.status().ToString().c_str());
      continue;
    }
    for (double noise : {0.0, 0.4}) {
      for (double avail : {1.0, 0.5, 0.0}) {
        NoiseOptions nopt;
        nopt.property_removal = noise;
        nopt.label_availability = avail;
        auto noisy = InjectNoise(*clean, nopt).value();
        std::printf("%-7s N=%5zu E=%6zu noise=%.0f%% lab=%3.0f%% | ",
                    spec.name.c_str(), noisy.num_nodes(), noisy.num_edges(),
                    noise * 100, avail * 100);
        for (Method m : AllMethods()) {
          if (!MethodSupportsLabelAvailability(m, avail)) continue;
          ExperimentResult r = RunMethod(noisy, m, config);
          if (!r.ran) {
            std::printf("%s=REFUSED ", MethodName(m));
            continue;
          }
          if (r.has_edge_types) {
            std::printf("%s n=%.2f e=%.2f t=%.1fs | ", MethodName(m),
                        r.node_f1.f1, r.edge_f1.f1, r.seconds);
          } else {
            std::printf("%s n=%.2f t=%.1fs | ", MethodName(m), r.node_f1.f1,
                        r.seconds);
          }
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
