#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: ThreadSanitizer over the
# execution runtime, ASan/UBSan over the durable state store.
#
#   tools/check.sh           # normal build + full ctest, then both legs
#   tools/check.sh --fast    # sanitizer legs only
#
# The TSan leg rebuilds runtime_test / pipeline_test / store_test / the
# pghive CLI in build-tsan/ with -DPGHIVE_SANITIZE=thread and runs a
# --threads 4 discovery, so every parallelized stage (including the
# parallel snapshot encode) executes under the race detector.
#
# The ASan/UBSan leg rebuilds the store, csv and parser tests in
# build-asan/ with -DPGHIVE_SANITIZE=address,undefined and drives a durable
# discover -> crash-free resume -> inspect-state cycle through the CLI, so
# the binary-format decoders run their corrupt-input paths under the memory
# and UB detectors.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

if [[ "${1:-}" != "--fast" ]]; then
  echo "=== tier-1: normal build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "${JOBS}"
  (cd build && ctest --output-on-failure -j "${JOBS}")
fi

echo "=== TSan: runtime + pipeline + store tests, 4-thread discovery ==="
cmake -B build-tsan -S . -DPGHIVE_SANITIZE=thread \
  -DPGHIVE_BUILD_BENCHMARKS=OFF -DPGHIVE_BUILD_EXAMPLES=OFF \
  -DPGHIVE_BUILD_TOOLS=OFF
cmake --build build-tsan -j "${JOBS}" \
  --target runtime_test pipeline_test store_test pghive_app
(cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|Parallel|Pipeline|Snapshot|Journal|Durable')

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
./build-tsan/apps/pghive generate POLE "${tmpdir}/pole" --nodes 2000
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 > /dev/null
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 \
  --method minhash --sample-datatypes > /dev/null
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 \
  --incremental 5 --state-dir "${tmpdir}/state-tsan" > /dev/null

echo "=== ASan/UBSan: store + csv + parser tests, durable CLI cycle ==="
cmake -B build-asan -S . -DPGHIVE_SANITIZE=address,undefined \
  -DPGHIVE_BUILD_BENCHMARKS=OFF -DPGHIVE_BUILD_EXAMPLES=OFF \
  -DPGHIVE_BUILD_TOOLS=OFF
cmake --build build-asan -j "${JOBS}" \
  --target store_test csv_io_test pgschema_parser_test pghive_app
(cd build-asan && ctest --output-on-failure -j "${JOBS}" \
  -R 'BinaryIo|Codec|Snapshot|Journal|StreamBatches|Fingerprint|Durable|CsvIo|PgSchemaParser')

./build-asan/apps/pghive generate POLE "${tmpdir}/pole2" --nodes 1000
./build-asan/apps/pghive discover "${tmpdir}/pole2" --incremental 4 \
  --state-dir "${tmpdir}/state" --checkpoint-every 2 > /dev/null
./build-asan/apps/pghive resume "${tmpdir}/pole2" --incremental 4 \
  --state-dir "${tmpdir}/state" > /dev/null
./build-asan/apps/pghive inspect-state "${tmpdir}/state" > /dev/null

echo "=== all checks passed ==="
