#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the execution
# runtime.
#
#   tools/check.sh           # normal build + full ctest, then TSan pass
#   tools/check.sh --fast    # TSan pass only (runtime + pipeline tests)
#
# The TSan pass rebuilds runtime_test / pipeline_test / the pghive CLI in a
# separate build-tsan/ tree with -DPGHIVE_SANITIZE=thread and runs a
# --threads 4 discovery, so every parallelized stage executes under the
# race detector.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

if [[ "${1:-}" != "--fast" ]]; then
  echo "=== tier-1: normal build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "${JOBS}"
  (cd build && ctest --output-on-failure -j "${JOBS}")
fi

echo "=== TSan: runtime + pipeline tests, 4-thread discovery ==="
cmake -B build-tsan -S . -DPGHIVE_SANITIZE=thread \
  -DPGHIVE_BUILD_BENCHMARKS=OFF -DPGHIVE_BUILD_EXAMPLES=OFF \
  -DPGHIVE_BUILD_TOOLS=OFF
cmake --build build-tsan -j "${JOBS}" \
  --target runtime_test pipeline_test pghive_app
(cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|Parallel|Pipeline')

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
./build-tsan/apps/pghive generate POLE "${tmpdir}/pole" --nodes 2000
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 > /dev/null
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 \
  --method minhash --sample-datatypes > /dev/null

echo "=== all checks passed ==="
