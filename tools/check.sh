#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes: ThreadSanitizer over the
# execution runtime, ASan/UBSan over the durable state store.
#
#   tools/check.sh           # normal build + full ctest, then both legs
#   tools/check.sh --fast    # sanitizer legs only
#
# The TSan leg rebuilds runtime_test / pipeline_test / store_test /
# obs_test / the pghive CLI in build-tsan/ with -DPGHIVE_SANITIZE=thread and runs a
# --threads 4 discovery, so every parallelized stage (including the
# parallel snapshot encode) executes under the race detector.
#
# The ASan/UBSan leg rebuilds the store, csv, parser, golden-equivalence
# and snapshot-compat tests in build-asan/ with
# -DPGHIVE_SANITIZE=address,undefined and drives a durable
# discover -> crash-free resume -> inspect-state cycle through the CLI, so
# the binary-format decoders run their corrupt-input paths under the memory
# and UB detectors and the interned-core refactor is re-verified against
# the pre-refactor golden schemas under ASan.
#
# The full run additionally re-records the micro_pipeline per-stage
# baseline and fails when 1-thread encode+cluster regresses more than 10%
# against the committed BENCH_pipeline.json, gates the micro_drift
# mutation-batch series on last-4 <= 2x first-4 flatness (retractable
# aggregates must keep mutation batches O(batch)), and requires the
# 8-thread signature-sharded Feed to be >= 1.5x faster than 1-thread on
# multicore hosts (skipped with a warning on single-core hosts, where the
# bench marks multi-thread entries "degraded"). The hot-path gate requires
# 1-thread encode+cluster to hold >= 1.5x over the pinned pre-SoA baseline
# (bench/BASELINE_pre_soa.json) on AVX2 hosts (warn-skip otherwise), and a
# scalar-vs-SIMD leg requires PGHIVE_SIMD=off and =on discoveries to emit
# byte-identical schema JSON for both LSH backends.
#
# The serve smoke runs the daemon with tracing + access log + alert rules:
# the served schema must stay byte-identical to the tracing-off one-shot,
# /metrics?format=prometheus must pass tools/prometheus_lint.py, and the
# SIGTERM drain must leave alert state, the access log and the request
# trace behind.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

if [[ "${1:-}" != "--fast" ]]; then
  echo "=== tier-1: normal build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "${JOBS}"
  (cd build && ctest --output-on-failure -j "${JOBS}")

  echo "=== perf guard: encode+cluster vs committed BENCH_pipeline.json ==="
  # Re-record the per-stage baseline (benchmark loops filtered out) and
  # fail when the 1-thread encode+cluster total regresses more than 10%
  # against the committed trajectory file.
  if command -v python3 > /dev/null && [[ -x build/bench/micro_pipeline ]]; then
    perf_tmp="$(mktemp -d)"
    # Three recordings, compared by their minimum: single-shot wall-clock
    # timings on a loaded (or 1-vCPU) machine swing far more than the 10%
    # threshold, and the min over repeats is the standard estimator for
    # the noise-free cost.
    for i in 1 2 3; do
      PGHIVE_BENCH_OUT="${perf_tmp}/run${i}.json" \
        ./build/bench/micro_pipeline --benchmark_filter='^$' > /dev/null 2>&1
    done
    if grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null; then
      host_avx2=1
    else
      host_avx2=0
    fi
    PGHIVE_HOST_AVX2="${host_avx2}" python3 - BENCH_pipeline.json \
      bench/BASELINE_pre_soa.json \
      "${perf_tmp}/run1.json" "${perf_tmp}/run2.json" "${perf_tmp}/run3.json" \
      <<'PYEOF'
import json, os, sys

def load(path):
    with open(path) as f:
        return json.load(f)

def encode_cluster_1thread(doc):
    for run in doc["runs"]:
        if run["threads"] == 1:
            s = run["stages"]
            return (s["encode_nodes"] + s["cluster_nodes"] +
                    s["encode_edges"] + s["cluster_edges"])
    raise SystemExit("no 1-thread run in baseline")

fresh = [load(p) for p in sys.argv[3:]]
committed = encode_cluster_1thread(load(sys.argv[1]))
current = min(encode_cluster_1thread(d) for d in fresh)
print(f"encode+cluster 1-thread: committed {committed:.4f}s, "
      f"current {current:.4f}s")
if current > committed * 1.10:
    raise SystemExit(
        f"PERF REGRESSION: encode+cluster {current:.4f}s is more than 10% "
        f"slower than the committed baseline {committed:.4f}s "
        f"(BENCH_pipeline.json)")

# Hot-path speedup gate: the SoA/SIMD/union-find pass must hold its win
# against the pinned pre-pass baseline (bench/BASELINE_pre_soa.json, the
# BENCH_pipeline.json recorded just before the pass landed on comparable
# hardware). The SIMD flavours only dispatch on AVX2 hosts, so without
# AVX2 the gate is skipped with a warning rather than failed.
pre_soa = encode_cluster_1thread(load(sys.argv[2]))
if os.environ.get("PGHIVE_HOST_AVX2") != "1":
    print(f"hot-path speedup: pre-SoA {pre_soa:.4f}s, current {current:.4f}s "
          f"— WARNING: host lacks AVX2, 1.5x gate skipped")
else:
    speedup = pre_soa / current if current > 0 else 0.0
    print(f"hot-path speedup: pre-SoA {pre_soa:.4f}s, current {current:.4f}s, "
          f"speedup {speedup:.2f}x")
    if speedup < 1.5:
        raise SystemExit(
            f"HOT-PATH REGRESSION: encode+cluster is only {speedup:.2f}x "
            f"faster than the pre-SoA baseline (requires >= 1.5x on AVX2 "
            f"hosts; bench/BASELINE_pre_soa.json)")

# Quadratic-growth gate over the delta-maintained incremental series: with
# O(batch) aggregate folds, per-batch post-processing cost must stay flat
# as the stream accumulates. Compare the mean of the last 4 batches against
# the first 4 on the elementwise-min series (noise is additive, so the min
# over repeats estimates the true per-batch cost); a rescan-per-batch
# implementation grows linearly in every repeat and trips this immediately.
# The 2 ms floor keeps scheduler noise on near-zero timings from flaking
# the gate.
incs = [d.get("incremental") for d in fresh]
if any(i is None for i in incs):
    raise SystemExit("no 'incremental' section in the fresh baseline; "
                     "bench/micro_pipeline is out of date")
series = [i["post_seconds_delta"] for i in incs]
if min(len(s) for s in series) < 8:
    raise SystemExit("incremental series too short")
delta = [min(vals) for vals in zip(*series)]
head = sum(delta[:4]) / 4
tail = sum(delta[-4:]) / 4
floor = 0.002
print(f"incremental post-process ({len(delta)} batches): "
      f"first-4 mean {head * 1e3:.3f} ms, last-4 mean {tail * 1e3:.3f} ms, "
      f"rescan speedup {incs[0]['speedup_vs_rescan']:.1f}x")
if tail > max(head, floor) * 2.0:
    raise SystemExit(
        f"QUADRATIC GROWTH: per-batch post-processing rose from "
        f"{head * 1e3:.3f} ms to {tail * 1e3:.3f} ms across the stream — "
        f"delta maintenance is no longer O(batch)")

# Sharded-Feed scaling gate: the signature-sharded incremental feed must
# actually parallelize. On a multicore host the 8-thread sharded feed is
# required to run in at most 1/1.5 of the 1-thread time (min over the 3
# recordings, same estimator as above). Single-core hosts mark the
# multi-thread entries "degraded" — there the ratio only measures pool
# overhead, so the gate is skipped with a warning.
sharded = [d.get("sharded_feed") for d in fresh]
if any(x is None for x in sharded):
    raise SystemExit("no 'sharded_feed' section in the fresh baseline; "
                     "bench/micro_pipeline is out of date")
def feed_seconds(doc, threads):
    for run in doc["runs"]:
        if run["threads"] == threads:
            return run["feed_seconds"]
    raise SystemExit(f"no {threads}-thread sharded feed run")
sf1 = min(feed_seconds(d, 1) for d in sharded)
sf8 = min(feed_seconds(d, 8) for d in sharded)
hw = fresh[0].get("hardware_threads", 1)
if sf1 <= 0 or sf8 <= 0:
    raise SystemExit("sharded feed bench failed (non-positive timing)")
if hw <= 1:
    print(f"sharded feed: 1t {sf1 * 1e3:.1f} ms, 8t {sf8 * 1e3:.1f} ms — "
          f"WARNING: single-core host (hardware_threads={hw}), "
          f"scaling gate skipped")
else:
    speedup = sf1 / sf8
    print(f"sharded feed: 1t {sf1 * 1e3:.1f} ms, 8t {sf8 * 1e3:.1f} ms, "
          f"speedup {speedup:.2f}x")
    if speedup < 1.5:
        raise SystemExit(
            f"SHARDED SCALING REGRESSION: the 8-thread sharded feed is only "
            f"{speedup:.2f}x faster than 1-thread (requires >= 1.5x on this "
            f"{hw}-thread host)")
print("perf guard ok")
PYEOF
    rm -rf "${perf_tmp}"
  else
    echo "skipping perf guard (python3 or build/bench/micro_pipeline missing)"
  fi

  echo "=== perf guard: mutation-batch cost flatness (bench/micro_drift) ==="
  # Same elementwise-min idiom over the 32-batch steady mutation stream:
  # with retractable aggregates every batch retires as much as it inserts,
  # so per-batch cost must stay flat. A rebuild-per-retraction regression
  # grows with the accumulated graph and trips the 2x gate.
  if command -v python3 > /dev/null && [[ -x build/bench/micro_drift ]]; then
    drift_tmp="$(mktemp -d)"
    for i in 1 2 3; do
      PGHIVE_BENCH_OUT="${drift_tmp}/run${i}.json" \
        ./build/bench/micro_drift --benchmark_filter='^$' > /dev/null 2>&1
    done
    python3 - "${drift_tmp}/run1.json" "${drift_tmp}/run2.json" \
      "${drift_tmp}/run3.json" <<'PYEOF'
import json, sys

series = []
rescans = []
for path in sys.argv[1:]:
    with open(path) as f:
        doc = json.load(f)
    series.append(doc["batch_seconds"])
    rescans.append(doc["rescan_seconds"])
if min(len(s) for s in series) < 8:
    raise SystemExit("mutation-batch series too short")
batch = [min(vals) for vals in zip(*series)]
head = sum(batch[:4]) / 4
tail = sum(batch[-4:]) / 4
floor = 0.002
print(f"mutation batches ({len(batch)}): first-4 mean {head * 1e3:.3f} ms, "
      f"last-4 mean {tail * 1e3:.3f} ms, "
      f"rescan alternative {min(rescans) * 1e3:.3f} ms")
if tail > max(head, floor) * 2.0:
    raise SystemExit(
        f"RETRACTION GROWTH: per-batch mutation cost rose from "
        f"{head * 1e3:.3f} ms to {tail * 1e3:.3f} ms across the steady "
        f"stream — retractable aggregates are no longer O(batch)")
print("drift flatness ok")
PYEOF
    rm -rf "${drift_tmp}"
  else
    echo "skipping drift flatness gate (python3 or build/bench/micro_drift missing)"
  fi

  echo "=== scalar-vs-SIMD byte-identity: PGHIVE_SIMD=off vs on ==="
  # The kernel flavours promise bit-identical output (simd/kernels.h): a
  # full discovery with the SIMD dispatch disabled must produce the same
  # schema JSON, byte for byte, as the enabled run — for both LSH backends.
  # On hosts without AVX2 both runs take the scalar path, which still
  # exercises the env-var dispatch; note it but run the comparison anyway.
  if ! grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null; then
    echo "note: host lacks AVX2 — both legs run the scalar flavour"
  fi
  simd_tmp="$(mktemp -d)"
  ./build/apps/pghive generate IYP "${simd_tmp}/iyp"
  for method in elsh minhash; do
    PGHIVE_SIMD=off ./build/apps/pghive discover "${simd_tmp}/iyp" \
      --method "${method}" \
      --save-schema "${simd_tmp}/${method}-scalar.json" > /dev/null
    PGHIVE_SIMD=on ./build/apps/pghive discover "${simd_tmp}/iyp" \
      --method "${method}" \
      --save-schema "${simd_tmp}/${method}-simd.json" > /dev/null
    cmp "${simd_tmp}/${method}-scalar.json" "${simd_tmp}/${method}-simd.json"
    echo "simd byte-identity ok (${method})"
  done
  rm -rf "${simd_tmp}"
fi

echo "=== TSan: runtime + pipeline + store + serve tests, 4-thread discovery ==="
cmake -B build-tsan -S . -DPGHIVE_SANITIZE=thread \
  -DPGHIVE_BUILD_BENCHMARKS=OFF -DPGHIVE_BUILD_EXAMPLES=OFF \
  -DPGHIVE_BUILD_TOOLS=OFF
cmake --build build-tsan -j "${JOBS}" \
  --target runtime_test pipeline_test store_test obs_test serve_test \
  drift_equivalence_test pghive_app
(cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|Parallel|Pipeline|Snapshot|Journal|Durable|Obs|Serve|Drift')
# Sharded drift equivalence under TSan at the widest layout the suite
# carries (8 threads x 16 feed shards): per-shard candidate generation,
# fold partials and retraction routing all race-checked in one pass.
(cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
  -R 'DriftEquivalenceTest.*_t8_s16')

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT
./build-tsan/apps/pghive generate POLE "${tmpdir}/pole" --nodes 2000
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 > /dev/null
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 \
  --method minhash --sample-datatypes > /dev/null
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 \
  --incremental 5 --state-dir "${tmpdir}/state-tsan" > /dev/null
# The sharded feed path (16 shards over a 4-thread pool: oversubscribed
# shard tasks + shard-order merge) under the race detector.
./build-tsan/apps/pghive discover "${tmpdir}/pole" --threads 4 \
  --feed-shards 16 --incremental 5 \
  --state-dir "${tmpdir}/state-tsan-sharded" > /dev/null

echo "=== ASan/UBSan: store + csv + parser tests, durable CLI cycle ==="
cmake -B build-asan -S . -DPGHIVE_SANITIZE=address,undefined \
  -DPGHIVE_BUILD_BENCHMARKS=OFF -DPGHIVE_BUILD_EXAMPLES=OFF \
  -DPGHIVE_BUILD_TOOLS=OFF
cmake --build build-asan -j "${JOBS}" \
  --target store_test csv_io_test pgschema_parser_test \
  golden_equivalence_test store_compat_test drift_test \
  drift_equivalence_test lsh_test cluster_test pghive_app
# SimdKernel / EuclideanLsh / MinHash / LshClusterer cover the SoA + SIMD
# hot-path kernels (aligned loads, padded-lane reads, the AVX2 intrinsics
# paths) under ASan/UBSan alongside the store decoders.
(cd build-asan && ctest --output-on-failure -j "${JOBS}" \
  -R 'BinaryIo|Codec|Snapshot|Journal|StreamBatches|Fingerprint|Durable|CsvIo|PgSchemaParser|GoldenEquivalence|StoreCompat|Drift|Mutation|Evolution|NetSurviving|SimdKernel|EuclideanLsh|MinHash|LshClusterer')

./build-asan/apps/pghive generate POLE "${tmpdir}/pole2" --nodes 1000
./build-asan/apps/pghive discover "${tmpdir}/pole2" --incremental 4 \
  --state-dir "${tmpdir}/state" --checkpoint-every 2 > /dev/null
./build-asan/apps/pghive resume "${tmpdir}/pole2" --incremental 4 \
  --state-dir "${tmpdir}/state" > /dev/null
./build-asan/apps/pghive inspect-state "${tmpdir}/state" > /dev/null

echo "=== serve smoke: daemon schema byte-identical to one-shot discover ==="
# Start the daemon (under ASan) on an ephemeral port — with request tracing
# ON (--trace-out), an access log, and drift alert rules — HTTP-ingest the
# same endpoint-closed batch stream `discover --incremental 6` feeds, and
# require the served schema JSON to equal the one-shot (tracing-off)
# output byte for byte: tracing must never perturb discovery. Then scrape
# /metrics?format=prometheus and validate the exposition with
# tools/prometheus_lint.py, check /readyz and /v1/graphs/smoke/alerts,
# prove the LOCK pidfile (exit 4 for a second opener of a live directory)
# and a clean SIGTERM drain (exit 0, checkpoint + persisted alert state +
# access log on disk).
./build-asan/apps/pghive generate POLE "${tmpdir}/pole3" --nodes 1500
cat > "${tmpdir}/alert-rules.txt" <<'RULES'
# insert-only smoke stream: types and properties only ever appear
alert smoke_new_type drift type_added resolve_after=1000000
alert smoke_new_prop drift added_property resolve_after=1000000
RULES
./build-asan/apps/pghive serve smoke="${tmpdir}/serve-state" --port 0 \
  --port-file "${tmpdir}/port.txt" \
  --alert-rules "${tmpdir}/alert-rules.txt" \
  --access-log "${tmpdir}/access.jsonl" \
  --trace-out "${tmpdir}/serve-trace.json" > "${tmpdir}/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [[ -s "${tmpdir}/port.txt" ]] && break
  sleep 0.1
done
[[ -s "${tmpdir}/port.txt" ]] || {
  echo "serve daemon never wrote its port file"; cat "${tmpdir}/serve.log"
  exit 1
}
./build-asan/apps/pghive ingest "${tmpdir}/pole3" --graph smoke \
  --port-file "${tmpdir}/port.txt" --incremental 6 \
  --schema-out "${tmpdir}/served.json" > /dev/null
./build-asan/apps/pghive discover "${tmpdir}/pole3" --incremental 6 \
  --state-dir "${tmpdir}/oneshot-state" \
  --save-schema "${tmpdir}/oneshot.json" > /dev/null
cmp "${tmpdir}/served.json" "${tmpdir}/oneshot.json"
# The drift endpoint on the live daemon: the ingested epochs must have
# produced a non-empty versioned history, and ?since=<last epoch> must
# filter it down to nothing.
if command -v python3 > /dev/null; then
  python3 - "$(cat "${tmpdir}/port.txt")" <<'PYEOF'
import json, sys, urllib.request

port = sys.argv[1]
url = f"http://127.0.0.1:{port}/v1/graphs/smoke/drift"
with urllib.request.urlopen(url, timeout=10) as resp:
    assert resp.status == 200, resp.status
    epoch_hdr = resp.headers.get("x-pghive-epoch")
    doc = json.loads(resp.read().decode())
assert epoch_hdr is not None and int(epoch_hdr) >= 1, epoch_hdr
assert doc["epoch"] >= 1, doc
assert doc["counters"]["epochs_observed"] >= 1, doc
assert isinstance(doc["history"], list) and doc["history"], doc
with urllib.request.urlopen(f"{url}?since={doc['epoch']}", timeout=10) as r:
    tail = json.loads(r.read().decode())
assert tail["history"] == [], tail
print(f"drift endpoint ok: epoch {doc['epoch']}, "
      f"{len(doc['history'])} recorded diffs")
PYEOF
  # Prometheus exposition + readiness + alert state on the live daemon.
  python3 - "$(cat "${tmpdir}/port.txt")" "${tmpdir}/prom.txt" <<'PYEOF'
import json, sys, urllib.request

port, prom_path = sys.argv[1], sys.argv[2]
base = f"http://127.0.0.1:{port}"

with urllib.request.urlopen(f"{base}/metrics?format=prometheus",
                            timeout=10) as resp:
    assert resp.status == 200, resp.status
    ctype = resp.headers.get("content-type", "")
    assert ctype.startswith("text/plain; version=0.0.4"), ctype
    text = resp.read().decode()
with open(prom_path, "w") as f:
    f.write(text)

with urllib.request.urlopen(f"{base}/readyz", timeout=10) as resp:
    assert resp.status == 200, resp.status
    ready = json.loads(resp.read().decode())
assert ready["status"] == "ready", ready

with urllib.request.urlopen(f"{base}/v1/graphs/smoke/alerts",
                            timeout=10) as resp:
    assert resp.status == 200, resp.status
    alerts = json.loads(resp.read().decode())
# The insert-only stream certainly added types (epoch 1 diffs against an
# empty baseline); added_property depends on the generated batch slicing.
assert alerts["firing"] >= 1, alerts
names = {r["name"] for r in alerts["rules"] if r["firing"]}
assert "smoke_new_type" in names, names
print(f"readyz + alerts ok: {sorted(names)} firing")
PYEOF
  python3 tools/prometheus_lint.py "${tmpdir}/prom.txt" \
    --require pghive_serve_batches_admitted_total \
    --require pghive_alerts_firing_smoke \
    --require pghive_serve_route_seconds_batches_count
fi
set +e
./build-asan/apps/pghive discover "${tmpdir}/pole3" --incremental 6 \
  --state-dir "${tmpdir}/serve-state" > /dev/null 2>&1
lock_rc=$?
set -e
if [[ "${lock_rc}" -ne 4 ]]; then
  echo "expected exit 4 opening the live daemon's state dir, got ${lock_rc}"
  exit 1
fi
kill -TERM "${serve_pid}"
wait "${serve_pid}"  # non-zero (under set -e) = drain/checkpoint failed
./build-asan/apps/pghive inspect-state "${tmpdir}/serve-state" > /dev/null
./build-asan/apps/pghive drift "${tmpdir}/serve-state" > /dev/null
# The drain left the observability artifacts behind: persisted alert state
# (still firing — resolve_after is huge), a non-empty JSONL access log
# covering the ingest requests, and the request-span Chrome trace.
grep -q '"smoke_new_type"' "${tmpdir}/serve-state/alerts-state.json"
grep -q '"firing":true' "${tmpdir}/serve-state/alerts-state.json"
grep -q '"method":"POST"' "${tmpdir}/access.jsonl"
grep -q '"trace"' "${tmpdir}/access.jsonl"
grep -q '"serve.request"' "${tmpdir}/serve-trace.json"
grep -q '"serve.apply"' "${tmpdir}/serve-trace.json"
echo "serve smoke ok"

echo "=== observability: metrics + trace export sanity ==="
./build-asan/apps/pghive discover "${tmpdir}/pole2" --incremental 4 \
  --threads 2 --progress \
  --metrics-out "${tmpdir}/metrics.jsonl" \
  --trace-out "${tmpdir}/trace.json" > /dev/null
if command -v python3 > /dev/null; then
  python3 - "${tmpdir}/metrics.jsonl" "${tmpdir}/trace.json" <<'PYEOF'
import json, sys

metrics_path, trace_path = sys.argv[1], sys.argv[2]

# Metrics JSONL: every line valid JSON with type+name; span_stats present.
types = set()
with open(metrics_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        assert "type" in obj and "name" in obj, obj
        types.add(obj["type"])
for required in ("counter", "span_stats", "span"):
    assert required in types, f"missing {required} lines, got {types}"

# Chrome trace: a JSON array of complete events, non-empty, all ph == "X",
# containing the per-batch pipeline spans.
with open(trace_path) as f:
    events = json.load(f)
assert isinstance(events, list) and events, "empty trace"
assert all(e["ph"] == "X" for e in events)
for key in ("name", "ts", "dur", "pid", "tid"):
    assert all(key in e for e in events), f"missing {key}"
names = {e["name"] for e in events}
assert "pipeline.batch" in names, names
print(f"observability export ok: {len(events)} spans, "
      f"{sorted(types)} metric line types")
PYEOF
else
  # No python3: at least require non-empty outputs with the magic markers.
  grep -q '"type":"span_stats"' "${tmpdir}/metrics.jsonl"
  grep -q '"ph":"X"' "${tmpdir}/trace.json"
fi

echo "=== all checks passed ==="
