// Scratch diagnostic: intra- vs inter-type distance / Jaccard distributions
// of the encoded elements, for LSH parameter calibration. Not installed.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/feature_encoder.h"
#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"

using namespace pghive;

namespace {

double Dist(const std::vector<float>& a, const std::vector<float>& b) {
  double sq = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

double Jac(const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  std::set<uint64_t> sa(a.begin(), a.end()), sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& x : sa) inter += sb.count(x);
  size_t uni = sa.size() + sb.size() - inter;
  return uni ? double(inter) / uni : 1.0;
}

void Quantiles(const char* name, std::vector<double>& v) {
  if (v.empty()) {
    std::printf("  %-14s (empty)\n", name);
    return;
  }
  std::sort(v.begin(), v.end());
  auto q = [&](double p) { return v[size_t(p * (v.size() - 1))]; };
  std::printf("  %-14s n=%6zu  p05=%.2f p25=%.2f p50=%.2f p75=%.2f p95=%.2f\n",
              name, v.size(), q(.05), q(.25), q(.5), q(.75), q(.95));
}

void Analyze(const char* dsname, const PropertyGraph& g, double noise,
             double avail) {
  NoiseOptions nopt;
  nopt.property_removal = noise;
  nopt.label_availability = avail;
  auto noisy = InjectNoise(g, nopt).value();

  LabelEmbedderOptions eo;
  LabelEmbedder emb(eo);
  emb.Train(BuildBatchLabelCorpus(FullBatch(noisy))).ok();
  FeatureEncoder enc(&emb);
  auto nodes = enc.EncodeNodes(FullBatch(noisy));
  auto edges = enc.EncodeEdges(FullBatch(noisy), {});

  std::printf("%s noise=%.0f%% labels=%.0f%%\n", dsname, noise * 100,
              avail * 100);
  Rng rng(5);
  for (int pass = 0; pass < 2; ++pass) {
    const auto& enc_el = pass == 0 ? nodes : edges;
    auto truth = [&](size_t pos) -> const std::string& {
      return pass == 0 ? noisy.node(enc_el.ids[pos]).truth_type
                       : noisy.edge(enc_el.ids[pos]).truth_type;
    };
    std::vector<double> intra_d, inter_d, intra_j, inter_j;
    size_t n = enc_el.ids.size();
    for (int s = 0; s < 20000; ++s) {
      size_t i = rng.UniformU32(uint32_t(n));
      size_t j = rng.UniformU32(uint32_t(n));
      if (i == j) continue;
      double d = Dist(enc_el.VectorOf(i), enc_el.VectorOf(j));
      double jc = Jac(enc_el.TokensOf(i), enc_el.TokensOf(j));
      if (truth(i) == truth(j)) {
        intra_d.push_back(d);
        intra_j.push_back(jc);
      } else {
        inter_d.push_back(d);
        inter_j.push_back(jc);
      }
    }
    std::printf(" %s:\n", pass == 0 ? "nodes" : "edges");
    Quantiles("intra dist", intra_d);
    Quantiles("inter dist", inter_d);
    Quantiles("intra jacc", intra_j);
    Quantiles("inter jacc", inter_j);
  }
}

}  // namespace

int main() {
  for (const char* name : {"POLE", "ICIJ", "MB6", "LDBC"}) {
    auto spec = DatasetSpecByName(name).value();
    GenerateOptions gen;
    gen.num_nodes = 3000;
    gen.num_edges = 6000;
    auto g = GenerateGraph(spec, gen).value();
    Analyze(name, g, 0.0, 1.0);
    Analyze(name, g, 0.4, 1.0);
    Analyze(name, g, 0.4, 0.0);
  }
  return 0;
}
