// Writes a pinned state-directory fixture for the store backward-compat
// suite (tests/store_compat_test.cpp).
//
// The workload matches the committed v1 fixture exactly: POLE at 600 nodes /
// 1100 edges streamed as 6 endpoint-closed batches with a checkpoint after
// batch 4, and NO Finish() — so the directory holds a snapshot covering 4
// batches plus a journal segment with 2 pending records for recovery to
// replay. Alongside the directory the tool writes <dir>.expected.json, the
// schema (with instances) of the uninterrupted run.
//
// Run this from a build at the OLD format version right before bumping
// kSnapshotFormatVersion, and commit the output under tests/golden/:
//
//   make_state_fixture tests/golden/v2_state
//
// The tool always emits whatever version the linked code writes; the
// compat tests then pin that directory forever.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/schema_json.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "store/state_store.h"

using namespace pghive;
using namespace pghive::store;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-state-dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  fs::create_directories(dir);

  GenerateOptions gen;
  gen.num_nodes = 600;
  gen.num_edges = 1100;
  PropertyGraph g = GenerateGraph(MakePoleSpec(), gen).value();

  StoreOptions opt;
  opt.checkpoint_every_batches = 4;
  opt.checkpoint_every_bytes = 0;
  opt.fsync = false;

  auto st = DurableDiscoverer::OpenOrRecover(dir, opt);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.status().ToString().c_str());
    return 1;
  }
  for (const auto& b : MakeStreamBatches(g, 6)) {
    Status s = (*st)->Feed(b);
    if (!s.ok()) {
      std::fprintf(stderr, "feed failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  SchemaJsonOptions json_opt;
  json_opt.include_instances = true;
  json_opt.pretty = true;
  std::ofstream(dir + ".expected.json", std::ios::binary)
      << SchemaToJson((*st)->schema(), json_opt);

  if (ListSnapshotFiles(dir).empty() || ListJournalFiles(dir).empty()) {
    std::fprintf(stderr, "fixture incomplete: missing snapshot or journal\n");
    return 1;
  }
  std::printf("wrote %s (+ %s.expected.json)\n", dir.c_str(), dir.c_str());
  return 0;
}
