#!/usr/bin/env python3
"""Minimal Prometheus text-format (0.0.4) parser and validator.

Used by tools/check.sh and CI to prove that the serving daemon's
`GET /metrics?format=prometheus` output parses cleanly and upholds the
exposition invariants a real scraper relies on:

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  * every sample value parses as a float (or +Inf/-Inf/NaN)
  * `# TYPE` lines precede their metric's samples and name a known type
  * counters end in _total
  * histogram bucket series are cumulative (non-decreasing in le order),
    end with an le="+Inf" bucket, and that bucket equals <name>_count

Usage:
  prometheus_lint.py [FILE]                 # default: stdin
  prometheus_lint.py --require NAME [...]   # additionally assert samples
                                            # for NAME exist (sanitized
                                            # spelling, e.g.
                                            # pghive_serve_requests_total)

Exits 0 and prints a one-line summary on success; exits 1 with the
offending line on the first violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: \d+)?$"  # optional timestamp
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(line_no, line, message):
    print(f"prometheus_lint: line {line_no}: {message}: {line!r}",
          file=sys.stderr)
    sys.exit(1)


def parse_value(raw):
    if raw in ("+Inf", "-Inf", "NaN"):
        return float(raw.replace("Inf", "inf").replace("NaN", "nan"))
    return float(raw)


def parse_labels(raw):
    labels = {}
    for part in filter(None, raw.split(",")):
        m = LABEL_RE.match(part)
        if m is None:
            raise ValueError(f"bad label pair {part!r}")
        labels[m.group(1)] = m.group(2)
    return labels


def lint(text, required):
    declared_types = {}   # metric family -> type
    samples = []          # (line_no, name, labels, value)
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(line_no, line, "malformed TYPE line")
                _, _, family, kind = parts
                if not NAME_RE.match(family):
                    fail(line_no, line, f"illegal family name {family!r}")
                if kind not in KNOWN_TYPES:
                    fail(line_no, line, f"unknown type {kind!r}")
                if family in declared_types:
                    fail(line_no, line, f"duplicate TYPE for {family!r}")
                declared_types[family] = kind
            continue  # other comments (HELP, freeform) are fine
        m = SAMPLE_RE.match(line)
        if m is None:
            fail(line_no, line, "unparseable sample line")
        name = m.group("name")
        try:
            labels = parse_labels(m.group("labels") or "")
        except ValueError as err:
            fail(line_no, line, str(err))
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            fail(line_no, line, f"bad sample value {m.group('value')!r}")
        samples.append((line_no, name, labels, value))

    # Per-family checks against the declared types.
    by_name = {}
    for line_no, name, labels, value in samples:
        by_name.setdefault(name, []).append((line_no, labels, value))

    for family, kind in declared_types.items():
        if kind == "counter":
            if not family.endswith("_total"):
                print(f"prometheus_lint: counter {family!r} does not end in "
                      f"_total", file=sys.stderr)
                sys.exit(1)
            if family not in by_name:
                print(f"prometheus_lint: TYPE for {family!r} has no samples",
                      file=sys.stderr)
                sys.exit(1)
        elif kind == "histogram":
            buckets = by_name.get(family + "_bucket", [])
            counts = by_name.get(family + "_count", [])
            sums = by_name.get(family + "_sum", [])
            if not buckets or len(counts) != 1 or len(sums) != 1:
                print(f"prometheus_lint: histogram {family!r} missing "
                      f"_bucket/_sum/_count series", file=sys.stderr)
                sys.exit(1)
            prev = -1.0
            inf_value = None
            for line_no, labels, value in buckets:
                if "le" not in labels:
                    fail(line_no, family + "_bucket", "bucket without le")
                if value < prev:
                    fail(line_no, family + "_bucket",
                         f"non-cumulative bucket ({value} < {prev})")
                prev = value
                if labels["le"] == "+Inf":
                    inf_value = value
            if inf_value is None:
                print(f"prometheus_lint: histogram {family!r} has no "
                      f'le="+Inf" bucket', file=sys.stderr)
                sys.exit(1)
            if inf_value != counts[0][2]:
                print(f"prometheus_lint: histogram {family!r}: +Inf bucket "
                      f"{inf_value} != _count {counts[0][2]}",
                      file=sys.stderr)
                sys.exit(1)

    for name in required:
        if name not in by_name:
            print(f"prometheus_lint: required metric {name!r} not found "
                  f"among {len(by_name)} series", file=sys.stderr)
            sys.exit(1)

    histograms = sum(1 for k in declared_types.values() if k == "histogram")
    print(f"prometheus_lint ok: {len(samples)} samples, "
          f"{len(declared_types)} typed families ({histograms} histograms)")


def main(argv):
    required = []
    paths = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--require":
            try:
                required.append(next(it))
            except StopIteration:
                print("prometheus_lint: --require needs a metric name",
                      file=sys.stderr)
                return 1
        else:
            paths.append(arg)
    if len(paths) > 1:
        print("prometheus_lint: at most one input file", file=sys.stderr)
        return 1
    if paths:
        with open(paths[0]) as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    lint(text, required)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
