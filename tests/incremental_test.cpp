// Tests for the incremental discovery engine and schema merging (§4.6).

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "eval/f1.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

TEST(IncrementalTest, SingleBatchMatchesStatic) {
  PropertyGraph g = MakeFigure1Graph();
  IncrementalDiscoverer discoverer;
  ASSERT_TRUE(discoverer.Feed(FullBatch(g)).ok());
  const SchemaGraph& schema = discoverer.Finish(g);
  EXPECT_EQ(schema.node_types.size(), 4u);
  EXPECT_EQ(schema.edge_types.size(), 4u);
  EXPECT_EQ(discoverer.batches_processed(), 1u);
  EXPECT_EQ(discoverer.batch_seconds().size(), 1u);
}

TEST(IncrementalTest, MonotoneChainOnPole) {
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  IncrementalDiscoverer discoverer;
  SchemaGraph previous;
  for (const auto& batch : SplitIntoBatches(g, 10)) {
    ASSERT_TRUE(discoverer.Feed(batch).ok());
    // S_i ⊑ S_{i+1}: every earlier label/property is still covered.
    EXPECT_TRUE(SchemaCovers(discoverer.schema(), previous));
    previous = discoverer.schema();
  }
  EXPECT_EQ(discoverer.batches_processed(), 10u);
}

TEST(IncrementalTest, FinalSchemaQualityMatchesStatic) {
  auto g = GenerateGraph(MakeLdbcSpec(),
                         GenerateOptions{.num_nodes = 2000,
                                         .num_edges = 6000})
               .value();
  IncrementalDiscoverer discoverer;
  for (const auto& batch : SplitIntoBatches(g, 5)) {
    ASSERT_TRUE(discoverer.Feed(batch).ok());
  }
  const SchemaGraph& schema = discoverer.Finish(g);
  EXPECT_GT(MajorityF1Nodes(g, schema).f1, 0.99);
  EXPECT_GT(MajorityF1Edges(g, schema).f1, 0.95);
}

TEST(IncrementalTest, EveryInstanceAssignedExactlyOnce) {
  auto g = GenerateGraph(MakePoleSpec(),
                         GenerateOptions{.num_nodes = 500, .num_edges = 900})
               .value();
  IncrementalDiscoverer discoverer;
  for (const auto& batch : SplitIntoBatches(g, 4)) {
    ASSERT_TRUE(discoverer.Feed(batch).ok());
  }
  std::vector<int> seen(g.num_nodes(), 0);
  for (const auto& t : discoverer.schema().node_types) {
    for (NodeId id : t.instances) ++seen[id];
  }
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(seen[i], 1) << "node " << i;
  }
}

TEST(IncrementalTest, PostProcessEachBatchOption) {
  IncrementalOptions opt;
  opt.post_process_each_batch = true;
  IncrementalDiscoverer discoverer(opt);
  PropertyGraph g = MakeFigure1Graph();
  ASSERT_TRUE(discoverer.Feed(FullBatch(g)).ok());
  // Constraints filled without calling Finish().
  bool any_constraint = false;
  for (const auto& t : discoverer.schema().node_types) {
    any_constraint |= !t.constraints.empty();
  }
  EXPECT_TRUE(any_constraint);
}

// ---------- MergeSchemas ----------

SchemaGraph SchemaWithNodeType(const std::string& label,
                               std::set<std::string> props) {
  SchemaGraph s;
  SchemaNodeType t;
  t.name = label;
  t.labels = {label};
  t.property_keys = std::move(props);
  t.instances = {0};
  s.node_types.push_back(t);
  return s;
}

TEST(MergeSchemasTest, SameLabelTypesUnion) {
  SchemaGraph s1 = SchemaWithNodeType("Person", {"name"});
  SchemaGraph s2 = SchemaWithNodeType("Person", {"age"});
  SchemaGraph merged = MergeSchemas(s1, s2);
  ASSERT_EQ(merged.node_types.size(), 1u);
  EXPECT_EQ(merged.node_types[0].property_keys,
            (std::set<std::string>{"age", "name"}));
}

TEST(MergeSchemasTest, DistinctLabelsCoexist) {
  SchemaGraph merged = MergeSchemas(SchemaWithNodeType("A", {"x"}),
                                    SchemaWithNodeType("B", {"y"}));
  EXPECT_EQ(merged.node_types.size(), 2u);
}

TEST(MergeSchemasTest, MergedCoversBothInputs) {
  SchemaGraph s1 = SchemaWithNodeType("Person", {"name"});
  SchemaGraph s2 = SchemaWithNodeType("Org", {"url"});
  SchemaGraph merged = MergeSchemas(s1, s2);
  EXPECT_TRUE(SchemaCovers(merged, s1));
  EXPECT_TRUE(SchemaCovers(merged, s2));
}

TEST(MergeSchemasTest, EmptyIdentity) {
  SchemaGraph s = SchemaWithNodeType("T", {"p"});
  SchemaGraph merged = MergeSchemas(s, SchemaGraph());
  EXPECT_EQ(merged.node_types.size(), 1u);
  merged = MergeSchemas(SchemaGraph(), s);
  EXPECT_EQ(merged.node_types.size(), 1u);
}

TEST(MergeSchemasTest, EdgeTypesMergeWithConnectivityUpdate) {
  SchemaGraph s1, s2;
  SchemaEdgeType e1;
  e1.name = "R";
  e1.labels = {"R"};
  e1.source_labels = {"A"};
  e1.target_labels = {"B"};
  e1.instances = {0};
  s1.edge_types.push_back(e1);
  SchemaEdgeType e2 = e1;
  e2.target_labels = {"B"};
  e2.property_keys = {"w"};
  e2.instances = {1};
  s2.edge_types.push_back(e2);
  SchemaGraph merged = MergeSchemas(s1, s2);
  ASSERT_EQ(merged.edge_types.size(), 1u);
  EXPECT_TRUE(merged.edge_types[0].property_keys.count("w"));
  EXPECT_EQ(merged.edge_types[0].instances.size(), 2u);
}

}  // namespace
}  // namespace pghive
