// Unit tests for the common runtime layer: Status/Result, Rng, strings,
// hashing, union-find, CSV.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/csv.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/union_find.h"

namespace pghive {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(),  Status::NotFound("").code(),
      Status::AlreadyExists("").code(),    Status::OutOfRange("").code(),
      Status::FailedPrecondition("").code(), Status::IoError("").code(),
      Status::ParseError("").code(),       Status::Internal("").code(),
      Status::NotImplemented("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    PGHIVE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(std::move(r).value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<std::string> {
    if (!ok) return Status::Internal("boom");
    return std::string("value");
  };
  auto chain = [&](bool ok) -> Result<size_t> {
    PGHIVE_ASSIGN_OR_RETURN(std::string v, produce(ok));
    return v.size();
  };
  ASSERT_TRUE(chain(true).ok());
  EXPECT_EQ(chain(true).value(), 5u);
  EXPECT_EQ(chain(false).status().code(), StatusCode::kInternal);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, UniformU32Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformU32(17), 17u);
  EXPECT_EQ(rng.UniformU32(0), 0u);
  EXPECT_EQ(rng.UniformU32(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_EQ(rng.UniformInt(5, 4), 5);  // degenerate range clamps
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(21);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 30u);
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(10, 99);
  EXPECT_EQ(sample.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(31);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---------- strings ----------

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CanonicalLabelTokenSortsAndJoins) {
  EXPECT_EQ(CanonicalLabelToken({"Person", "Athlete"}), "Athlete&Person");
  EXPECT_EQ(CanonicalLabelToken({}), "");
  EXPECT_EQ(CanonicalLabelToken({"Solo"}), "Solo");
}

TEST(StringUtilTest, XmlEscapeAllSpecials) {
  EXPECT_EQ(XmlEscape("<a & \"b\" 'c'>"),
            "&lt;a &amp; &quot;b&quot; &apos;c&apos;&gt;");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringUtilTest, FormatDoubleAndThousands) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(42), "42");
}

// ---------- hash ----------

TEST(HashTest, Fnv1aStable) {
  // Known value stability: identical inputs hash identically across calls.
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, Mix64Bijective) {
  // Distinct inputs give distinct mixed outputs on a sample.
  std::set<uint64_t> out;
  for (uint64_t i = 0; i < 1000; ++i) out.insert(Mix64(i));
  EXPECT_EQ(out.size(), 1000u);
}

TEST(HashTest, HashSequenceOrderSensitive) {
  EXPECT_NE(HashSequence({1, 2, 3}), HashSequence({3, 2, 1}));
  EXPECT_EQ(HashSequence({1, 2, 3}), HashSequence({1, 2, 3}));
}

// ---------- union-find ----------

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumComponents(), 5u);
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionReducesComponents) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_EQ(uf.NumComponents(), 4u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(2, 3));
  auto comps = uf.Components();
  EXPECT_EQ(comps.size(), 3u);
  size_t total = 0;
  for (const auto& c : comps) total += c.size();
  EXPECT_EQ(total, 6u);
}

TEST(UnionFindTest, ComponentsCoverAllElements) {
  UnionFind uf(100);
  Rng rng(3);
  for (int i = 0; i < 80; ++i) {
    uf.Union(rng.UniformU32(100), rng.UniformU32(100));
  }
  auto comps = uf.Components();
  std::set<size_t> seen;
  for (const auto& c : comps) {
    for (size_t x : c) EXPECT_TRUE(seen.insert(x).second);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(comps.size(), uf.NumComponents());
}

// ---------- CSV ----------

TEST(CsvTest, ParseSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto fields = ParseCsvLine("a,\"b,c\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "b,c");
}

TEST(CsvTest, ParseEscapedQuote) {
  auto fields = ParseCsvLine("\"he said \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "he said \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto fields = ParseCsvLine("\"oops");
  EXPECT_FALSE(fields.ok());
  EXPECT_EQ(fields.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, ParseMultiRowDocument) {
  auto rows = ParseCsv("a,b\nc,\"d\ne\"\nf,g\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[1][1], "d\ne");  // embedded newline preserved
}

TEST(CsvTest, CrLfHandled) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "b");
}

TEST(CsvTest, QuoteOnlyWhenNeeded) {
  EXPECT_EQ(CsvQuote("plain"), "plain");
  EXPECT_EQ(CsvQuote("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvQuote("with\"quote"), "\"with\"\"quote\"");
}

TEST(CsvTest, RowRoundTrip) {
  std::vector<std::string> row = {"a", "b,c", "d\"e", "f\ng"};
  std::string text = FormatCsvRow(row);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0], row);
}

TEST(CsvTest, ReadMissingFileFails) {
  auto content = ReadFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, WriteAndReadBack) {
  std::string path = testing::TempDir() + "/pghive_csv_test.txt";
  ASSERT_TRUE(WriteFile(path, "hello\nworld").ok());
  auto content = ReadFile(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld");
}

}  // namespace
}  // namespace pghive
