// Tests for the task-parallel execution runtime (src/runtime/) and its
// headline invariant: DiscoverSchema output is bit-identical at 1, 2 and 8
// threads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/schema_json.h"
#include "core/value_stats.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace pghive {
namespace {

TEST(ThreadPoolTest, CompletesAllSubmittedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // The destructor drains the queue before joining.
  }
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  while (!ran.load()) std::this_thread::yield();
}

TEST(ThreadPoolTest, ThreadCountResolution) {
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_GE(ResolveThreadCount(0), 1);  // hardware concurrency
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ThreadPoolTest, EnvFallback) {
  unsetenv("PGHIVE_THREADS");
  EXPECT_EQ(ThreadCountFromEnv(1), 1);
  setenv("PGHIVE_THREADS", "6", 1);
  EXPECT_EQ(ThreadCountFromEnv(1), 6);
  setenv("PGHIVE_THREADS", "0", 1);
  EXPECT_EQ(ThreadCountFromEnv(5), 0);  // 0 = hardware, passed through
  setenv("PGHIVE_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadCountFromEnv(2), 2);
  setenv("PGHIVE_THREADS", "-3", 1);
  EXPECT_EQ(ThreadCountFromEnv(2), 2);
  unsetenv("PGHIVE_THREADS");
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10000;
  std::vector<int> hits(n, 0);
  ParallelFor(
      &pool, n, [&](size_t i) { ++hits[i]; }, /*grain=*/64);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, SequentialFallbackOnNullPool) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(
          &pool, 1000,
          [](size_t i) {
            if (i == 137) throw std::runtime_error("boom");
          },
          /*grain=*/32),
      std::runtime_error);
}

TEST(ParallelForTest, LowestChunkExceptionWins) {
  // Indices 100 (chunk 3 at grain 32) and 900 (chunk 28) both throw; the
  // rethrown exception must deterministically be the lower chunk's.
  ThreadPool pool(4);
  std::string message;
  try {
    ParallelFor(
        &pool, 1000,
        [](size_t i) {
          if (i == 100) throw std::runtime_error("low");
          if (i == 900) throw std::runtime_error("high");
        },
        /*grain=*/32);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message, "low");
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadPool pool(3);
  auto out = ParallelMap(
      &pool, 1000, [](size_t i) { return i * i; }, /*grain=*/16);
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST(ParallelReduceOrderedTest, EqualsSequentialFold) {
  // A non-commutative fold (string concatenation) is the strictest probe:
  // any reordering of chunks or elements changes the result.
  const size_t n = 1000;
  std::string expected;
  for (size_t i = 0; i < n; ++i) expected += std::to_string(i) + ",";

  auto chunk_fn = [](size_t begin, size_t end) {
    std::string s;
    for (size_t i = begin; i < end; ++i) s += std::to_string(i) + ",";
    return s;
  };
  auto merge_fn = [](std::string* acc, std::string&& part) {
    *acc += part;
  };

  for (int threads : {0, 1, 2, 8}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    for (size_t grain : {size_t{1}, size_t{7}, size_t{256}, size_t{5000}}) {
      EXPECT_EQ(ParallelReduceOrdered(pool.get(), n, std::string(), chunk_fn,
                                      merge_fn, grain),
                expected)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

TEST(ParallelReduceOrderedTest, SumMatchesAccumulate) {
  ThreadPool pool(8);
  const size_t n = 100000;
  long long got = ParallelReduceOrdered(
      &pool, n, 0LL,
      [](size_t begin, size_t end) {
        long long s = 0;
        for (size_t i = begin; i < end; ++i) s += static_cast<long long>(i);
        return s;
      },
      [](long long* acc, long long part) { *acc += part; });
  EXPECT_EQ(got, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelShardFoldTest, EqualsSequentialShardOrderMerge) {
  // Non-commutative merge (string concatenation): any deviation from the
  // ascending-shard merge order changes the result.
  const size_t num_shards = 13;
  std::string expected;
  for (size_t s = 0; s < num_shards; ++s) {
    expected += std::to_string(s) + ";";
  }
  for (int threads : {0, 1, 2, 8}) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
    const std::string got = ParallelShardFold(
        pool.get(), num_shards, std::string(),
        [](size_t shard) { return std::to_string(shard) + ";"; },
        [](std::string* acc, size_t shard, std::string&& part) {
          EXPECT_EQ(part, std::to_string(shard) + ";");
          *acc += part;
        });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelShardFoldTest, ZeroShardsReturnsInit) {
  ThreadPool pool(2);
  const int got = ParallelShardFold(
      &pool, 0, 42, [](size_t) { return 1; },
      [](int* acc, size_t, int part) { *acc += part; });
  EXPECT_EQ(got, 42);
}

TEST(ParallelShardFoldTest, EmptyShardsMergeAsIdentity) {
  // Shards whose worker returns an empty partial must still be merged (in
  // order) without disturbing the accumulated result — the incremental
  // engine routinely sees batches that touch only a few shards.
  ThreadPool pool(4);
  const std::string got = ParallelShardFold(
      &pool, 10, std::string(),
      [](size_t shard) {
        return shard % 3 == 0 ? std::to_string(shard) : std::string();
      },
      [](std::string* acc, size_t, std::string&& part) { *acc += part; });
  EXPECT_EQ(got, "0369");
}

TEST(ParallelShardFoldTest, MidShardExceptionPropagates) {
  // Shards 2 and 11 both throw; the rethrown exception must be the lowest
  // shard's (shard index == chunk index at grain 1), and no partial merge
  // may have leaked into the accumulator path.
  ThreadPool pool(4);
  std::string message;
  try {
    ParallelShardFold(
        &pool, 16, 0,
        [](size_t shard) -> int {
          if (shard == 2) throw std::runtime_error("low shard");
          if (shard == 11) throw std::runtime_error("high shard");
          return 1;
        },
        [](int* acc, size_t, int part) { *acc += part; });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message, "low shard");
}

TEST(ParallelShardFoldTest, OversubscribedShardCount) {
  // Far more shards than workers: excess shard tasks queue on the pool and
  // every shard still runs exactly once, merged in ascending order.
  ThreadPool pool(4);
  const size_t num_shards = 64;
  std::vector<std::atomic<int>> runs(num_shards);
  long long got = ParallelShardFold(
      &pool, num_shards, 0LL,
      [&runs](size_t shard) {
        runs[shard].fetch_add(1);
        return static_cast<long long>(shard);
      },
      [](long long* acc, size_t, long long part) { *acc += part; });
  EXPECT_EQ(got,
            static_cast<long long>(num_shards) * (num_shards - 1) / 2);
  for (size_t s = 0; s < num_shards; ++s) {
    EXPECT_EQ(runs[s].load(), 1) << "shard " << s;
  }
}

// --- Pipeline determinism: the tentpole invariant. ---

std::string DiscoverFingerprint(const PropertyGraph& g, ClusteringMethod m,
                                int num_threads, bool sample_datatypes) {
  PipelineOptions opt;
  opt.method = m;
  opt.num_threads = num_threads;
  opt.datatypes.sample = sample_datatypes;
  PgHivePipeline pipeline(opt);
  auto schema = pipeline.DiscoverSchema(g);
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  SchemaJsonOptions json_opt;
  json_opt.include_instances = true;  // full type/property/instance state
  return SchemaToJson(*schema, json_opt);
}

TEST(PipelineParallelismTest, SchemaIdenticalAt1And2And8Threads) {
  struct Case {
    const char* name;
    PropertyGraph graph;
  };
  GenerateOptions gen;
  gen.num_nodes = 900;
  gen.num_edges = 1600;
  std::vector<Case> cases;
  cases.push_back({"POLE", GenerateGraph(MakePoleSpec(), gen).value()});
  cases.push_back({"ICIJ", GenerateGraph(MakeIcijSpec(), gen).value()});

  for (const auto& c : cases) {
    for (ClusteringMethod m :
         {ClusteringMethod::kElsh, ClusteringMethod::kMinHash}) {
      const std::string baseline =
          DiscoverFingerprint(c.graph, m, /*num_threads=*/1,
                              /*sample_datatypes=*/false);
      for (int threads : {2, 8}) {
        EXPECT_EQ(DiscoverFingerprint(c.graph, m, threads, false), baseline)
            << c.name << " " << ClusteringMethodName(m) << " threads="
            << threads;
      }
    }
  }
}

TEST(PipelineParallelismTest, SampledDatatypesIdenticalAcrossThreadCounts) {
  // The sampling RNG is consumed on the calling thread in (type, key)
  // order, so even the sampled datatype path is thread-count independent.
  GenerateOptions gen;
  gen.num_nodes = 1200;
  gen.num_edges = 2000;
  auto g = GenerateGraph(MakePoleSpec(), gen).value();
  const std::string baseline = DiscoverFingerprint(
      g, ClusteringMethod::kElsh, 1, /*sample_datatypes=*/true);
  EXPECT_EQ(DiscoverFingerprint(g, ClusteringMethod::kElsh, 8, true),
            baseline);
}

TEST(PipelineParallelismTest, PoolOnlyCreatedWhenParallel) {
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  PipelineOptions opt;  // num_threads = 1
  PgHivePipeline sequential(opt);
  ASSERT_TRUE(sequential.DiscoverSchema(g).ok());
  EXPECT_EQ(sequential.thread_pool(), nullptr);

  opt.num_threads = 2;
  PgHivePipeline parallel(opt);
  ASSERT_TRUE(parallel.DiscoverSchema(g).ok());
  ASSERT_NE(parallel.thread_pool(), nullptr);
  EXPECT_EQ(parallel.thread_pool()->num_threads(), 2);
}

TEST(PipelineParallelismTest, StageTimingsPopulated) {
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  PgHivePipeline pipeline;
  ASSERT_TRUE(pipeline.DiscoverSchema(g).ok());
  const StageTimings& t = pipeline.last_diagnostics().timings;
  EXPECT_GT(t.embed_train, 0.0);
  EXPECT_GT(t.encode_nodes, 0.0);
  EXPECT_GT(t.cluster_nodes, 0.0);
  EXPECT_GT(t.encode_edges, 0.0);
  EXPECT_GT(t.cluster_edges, 0.0);
  EXPECT_GT(t.post_process, 0.0);
}

TEST(PipelineParallelismTest, ValueStatsIdenticalWithPool) {
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  SchemaValueStats seq = ComputeValueStats(g, *schema);
  ThreadPool pool(4);
  SchemaValueStats par = ComputeValueStats(g, *schema, {}, &pool);
  ASSERT_EQ(seq.node_types.size(), par.node_types.size());
  for (size_t i = 0; i < seq.node_types.size(); ++i) {
    ASSERT_EQ(seq.node_types[i].size(), par.node_types[i].size());
    for (const auto& [key, stats] : seq.node_types[i]) {
      const PropertyStats& other = par.node_types[i].at(key);
      EXPECT_EQ(stats.observed, other.observed);
      EXPECT_EQ(stats.distinct, other.distinct);
      EXPECT_EQ(stats.top_values, other.top_values);
      EXPECT_EQ(stats.enum_domain, other.enum_domain);
    }
  }
}

}  // namespace
}  // namespace pghive
