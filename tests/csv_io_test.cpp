// CSV import/export round-trip guarantees (graph/csv_io.h): save -> load
// yields a structurally identical graph, including values that stress the
// quoting/escaping rules of the dialect.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/csv_io.h"
#include "graph/property_graph.h"

namespace pghive {
namespace {

PropertyGraph MakeTrickyGraph() {
  PropertyGraph g;
  NodeId a = g.AddNode({"Person"},
                       {{"name", Value::String("Doe, Jane")},
                        {"bio", Value::String("says \"hi\"\nand leaves")},
                        {"age", Value::Int(41)}},
                       "Person");
  NodeId b = g.AddNode({"Person", "Admin"},
                       {{"name", Value::String(";semi;colons;")},
                        {"score", Value::Double(2.5)}},
                       "Person");
  NodeId c = g.AddNode({}, {{"flag", Value::Bool(true)}}, "");
  EXPECT_TRUE(g.AddEdge(a, b, {"KNOWS"},
                        {{"since", Value::String("a,b\"c\"\nd")}}, "KNOWS")
                  .ok());
  EXPECT_TRUE(g.AddEdge(b, c, {}, {}, "").ok());
  EXPECT_TRUE(
      g.AddEdge(c, a, {"LIKES"}, {{"weight", Value::Double(0.125)}}, "LIKES")
          .ok());
  return g;
}

TEST(CsvIoTest, TextRoundTripPreservesGraph) {
  PropertyGraph g = MakeTrickyGraph();
  auto loaded = GraphFromCsv(NodesToCsv(g), EdgesToCsv(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(GraphsEqual(g, *loaded));
}

TEST(CsvIoTest, LoadSaveLoadIsIdentical) {
  std::string prefix = testing::TempDir() + "/pghive_csv_roundtrip";
  PropertyGraph g = MakeTrickyGraph();
  ASSERT_TRUE(SaveGraphCsv(g, prefix).ok());
  auto first = LoadGraphCsv(prefix);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(GraphsEqual(g, *first));

  // Second generation: saving the loaded graph reproduces it exactly.
  std::string prefix2 = prefix + "_again";
  ASSERT_TRUE(SaveGraphCsv(*first, prefix2).ok());
  auto second = LoadGraphCsv(prefix2);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(GraphsEqual(*first, *second));
  EXPECT_EQ(NodesToCsv(*first), NodesToCsv(*second));
  EXPECT_EQ(EdgesToCsv(*first), EdgesToCsv(*second));
}

TEST(CsvIoTest, GeneratedDatasetRoundTrips) {
  auto spec = DatasetSpecByName("ICIJ").value();
  GenerateOptions gen;
  gen.num_nodes = 400;
  gen.num_edges = 700;
  PropertyGraph g = GenerateGraph(spec, gen).value();
  auto loaded = GraphFromCsv(NodesToCsv(g), EdgesToCsv(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(GraphsEqual(g, *loaded));
}

TEST(CsvIoTest, GraphsEqualDetectsDifferences) {
  PropertyGraph a = MakeTrickyGraph();
  EXPECT_TRUE(GraphsEqual(a, a));

  PropertyGraph b = MakeTrickyGraph();
  std::map<std::string, Value> props = b.node(0).properties;
  props["age"] = Value::Int(42);
  b.SetNodeProperties(0, props);
  EXPECT_FALSE(GraphsEqual(a, b));

  PropertyGraph c = MakeTrickyGraph();
  std::set<std::string> labels = c.edge(0).labels;
  labels.insert("EXTRA");
  c.SetEdgeLabels(0, labels);
  EXPECT_FALSE(GraphsEqual(a, c));

  PropertyGraph d = MakeTrickyGraph();
  d.AddNode({"Extra"}, {}, "");
  EXPECT_FALSE(GraphsEqual(a, d));
}

}  // namespace
}  // namespace pghive
