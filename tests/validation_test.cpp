// Tests for schema validation (LOOSE / STRICT modes).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/validation.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

// A small hand-built schema to validate against.
SchemaGraph PersonSchema() {
  SchemaGraph s;
  SchemaNodeType person;
  person.name = "Person";
  person.labels = {"Person"};
  person.property_keys = {"name", "age", "email"};
  person.constraints["name"] = {DataType::kString, true};
  person.constraints["age"] = {DataType::kInt, true};
  person.constraints["email"] = {DataType::kString, false};
  s.node_types.push_back(person);

  SchemaEdgeType knows;
  knows.name = "KNOWS";
  knows.labels = {"KNOWS"};
  knows.property_keys = {"since"};
  knows.constraints["since"] = {DataType::kDate, false};
  knows.source_labels = {"Person"};
  knows.target_labels = {"Person"};
  knows.cardinality = SchemaCardinality::kManyToMany;
  s.edge_types.push_back(knows);
  return s;
}

TEST(ValidationTest, ConformingGraphIsValidStrict) {
  GraphBuilder b;
  auto p1 = b.Node({"Person"}, {{"name", Value::String("A")},
                                {"age", Value::Int(30)}});
  auto p2 = b.Node({"Person"}, {{"name", Value::String("B")},
                                {"age", Value::Int(31)},
                                {"email", Value::String("b@x")}});
  b.Edge(p1, p2, "KNOWS", {{"since", Value::Date("2020-01-01")}});
  PropertyGraph g = std::move(b).Build();

  ValidationOptions opt;
  opt.mode = ValidationMode::kStrict;
  ValidationReport report = ValidateGraph(g, PersonSchema(), opt);
  EXPECT_TRUE(report.valid()) << report.Summary();
  EXPECT_EQ(report.elements_checked, 3u);
  EXPECT_EQ(report.elements_valid, 3u);
  EXPECT_DOUBLE_EQ(report.validity_ratio(), 1.0);
}

TEST(ValidationTest, UnknownLabelFailsBothModes) {
  GraphBuilder b;
  b.Node({"Robot"}, {{"name", Value::String("R2")}});
  PropertyGraph g = std::move(b).Build();
  for (ValidationMode mode :
       {ValidationMode::kLoose, ValidationMode::kStrict}) {
    ValidationOptions opt;
    opt.mode = mode;
    ValidationReport report = ValidateGraph(g, PersonSchema(), opt);
    ASSERT_FALSE(report.valid());
    EXPECT_EQ(report.violations[0].kind, ViolationKind::kNoMatchingType);
  }
}

TEST(ValidationTest, MissingMandatoryOnlyStrict) {
  GraphBuilder b;
  b.Node({"Person"}, {{"name", Value::String("A")}});  // no age
  PropertyGraph g = std::move(b).Build();

  ValidationReport loose = ValidateGraph(g, PersonSchema(), {});
  EXPECT_TRUE(loose.valid());

  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  ValidationReport report = ValidateGraph(g, PersonSchema(), strict);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kMissingMandatory);
  EXPECT_NE(report.violations[0].detail.find("age"), std::string::npos);
}

TEST(ValidationTest, DatatypeMismatchStrict) {
  GraphBuilder b;
  b.Node({"Person"}, {{"name", Value::String("A")},
                      {"age", Value::String("thirty")}});
  PropertyGraph g = std::move(b).Build();
  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  ValidationReport report = ValidateGraph(g, PersonSchema(), strict);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kDatatypeMismatch);
}

TEST(ValidationTest, IntAcceptedWhereDoubleDeclared) {
  SchemaGraph s = PersonSchema();
  s.node_types[0].constraints["age"] = {DataType::kDouble, true};
  GraphBuilder b;
  b.Node({"Person"}, {{"name", Value::String("A")}, {"age", Value::Int(3)}});
  PropertyGraph g = std::move(b).Build();
  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  EXPECT_TRUE(ValidateGraph(g, s, strict).valid());
}

TEST(ValidationTest, UndeclaredPropertyFails) {
  GraphBuilder b;
  b.Node({"Person"}, {{"name", Value::String("A")},
                      {"age", Value::Int(5)},
                      {"shoe_size", Value::Int(44)}});
  PropertyGraph g = std::move(b).Build();
  // LOOSE already fails coverage (shoe_size not in the type's keys).
  ValidationReport loose = ValidateGraph(g, PersonSchema(), {});
  EXPECT_FALSE(loose.valid());
  EXPECT_EQ(loose.violations[0].kind, ViolationKind::kNoMatchingType);
}

TEST(ValidationTest, EndpointMismatchReported) {
  GraphBuilder b;
  auto p = b.Node({"Person"}, {{"name", Value::String("A")},
                               {"age", Value::Int(1)}});
  auto r = b.Node({"Person"}, {{"name", Value::String("B")},
                               {"age", Value::Int(2)}});
  b.Edge(p, r, "KNOWS", {});
  PropertyGraph g = std::move(b).Build();
  SchemaGraph s = PersonSchema();
  s.edge_types[0].target_labels = {"Organization"};  // wrong endpoint decl
  ValidationReport report = ValidateGraph(g, s, {});
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kEndpointMismatch);
}

TEST(ValidationTest, CardinalityViolationStrict) {
  SchemaGraph s = PersonSchema();
  s.edge_types[0].cardinality = SchemaCardinality::kZeroOrOne;
  GraphBuilder b;
  auto p1 = b.Node({"Person"}, {{"name", Value::String("A")},
                                {"age", Value::Int(1)}});
  auto p2 = b.Node({"Person"}, {{"name", Value::String("B")},
                                {"age", Value::Int(2)}});
  auto p3 = b.Node({"Person"}, {{"name", Value::String("C")},
                                {"age", Value::Int(3)}});
  b.Edge(p1, p2, "KNOWS", {});
  b.Edge(p1, p3, "KNOWS", {});  // second distinct target: violates 0:1
  PropertyGraph g = std::move(b).Build();
  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  ValidationReport report = ValidateGraph(g, s, strict);
  bool found = false;
  for (const auto& v : report.violations) {
    found |= v.kind == ViolationKind::kCardinalityExceeded;
  }
  EXPECT_TRUE(found) << report.Summary();
}

TEST(ValidationTest, MaxViolationsCapsOutput) {
  GraphBuilder b;
  for (int i = 0; i < 20; ++i) b.Node({"Robot"}, {});
  PropertyGraph g = std::move(b).Build();
  ValidationOptions opt;
  opt.max_violations = 5;
  ValidationReport report = ValidateGraph(g, PersonSchema(), opt);
  EXPECT_EQ(report.violations.size(), 5u);
  EXPECT_EQ(report.elements_checked, 20u);
}

TEST(ValidationTest, DiscoveredSchemaValidatesItsOwnGraphLoose) {
  // Invariant: a schema discovered from a graph covers that graph.
  for (const char* name : {"POLE", "MB6", "ICIJ", "LDBC"}) {
    auto spec = DatasetSpecByName(name).value();
    GenerateOptions gen;
    gen.num_nodes = 600;
    gen.num_edges = 1200;
    auto g = GenerateGraph(spec, gen).value();
    PgHivePipeline pipeline;
    auto schema = pipeline.DiscoverSchema(g).value();
    ValidationReport report = ValidateGraph(g, schema, {});
    EXPECT_TRUE(report.valid()) << name << ": " << report.Summary();
  }
}

TEST(ValidationTest, DiscoveredSchemaStrictSelfValidationMandatoryHolds) {
  // STRICT self-validation: mandatory and datatype constraints are sound by
  // §4.7, so the only possible strict violations on the originating graph
  // are none at all.
  auto g = GenerateGraph(MakePoleSpec(),
                         GenerateOptions{.num_nodes = 500, .num_edges = 900})
               .value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g).value();
  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  ValidationReport report = ValidateGraph(g, schema, strict);
  // Cardinality classes are derived from this very graph, so they hold;
  // mandatory properties were observed in every instance.
  size_t hard_violations = 0;
  for (const auto& v : report.violations) {
    if (v.kind == ViolationKind::kMissingMandatory ||
        v.kind == ViolationKind::kDatatypeMismatch) {
      ++hard_violations;
    }
  }
  EXPECT_EQ(hard_violations, 0u) << report.Summary();
}

TEST(ValidationTest, NewDataScreening) {
  // The downstream workflow: discover on today's graph, screen tomorrow's
  // batch. A new property value type shows up as a STRICT violation.
  GraphBuilder today;
  for (int i = 0; i < 10; ++i) {
    today.Node({"Person"}, {{"age", Value::Int(20 + i)}});
  }
  PropertyGraph g_today = std::move(today).Build();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g_today).value();

  GraphBuilder tomorrow;
  tomorrow.Node({"Person"}, {{"age", Value::String("unknown")}});
  PropertyGraph g_tomorrow = std::move(tomorrow).Build();
  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  ValidationReport report = ValidateGraph(g_tomorrow, schema, strict);
  ASSERT_FALSE(report.valid());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kDatatypeMismatch);
}

TEST(ValidationTest, DataTypeAcceptsMatrix) {
  EXPECT_TRUE(DataTypeAccepts(DataType::kString, DataType::kInt));
  EXPECT_TRUE(DataTypeAccepts(DataType::kDouble, DataType::kInt));
  EXPECT_TRUE(DataTypeAccepts(DataType::kTimestamp, DataType::kDate));
  EXPECT_FALSE(DataTypeAccepts(DataType::kInt, DataType::kDouble));
  EXPECT_FALSE(DataTypeAccepts(DataType::kDate, DataType::kTimestamp));
  EXPECT_FALSE(DataTypeAccepts(DataType::kBool, DataType::kInt));
}

TEST(ValidationTest, ReportSummaryRendering) {
  GraphBuilder b;
  b.Node({"Robot"}, {});
  PropertyGraph g = std::move(b).Build();
  ValidationReport report = ValidateGraph(g, PersonSchema(), {});
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("0/1 elements valid"), std::string::npos);
  EXPECT_NE(summary.find("NoMatchingType"), std::string::npos);
}

}  // namespace
}  // namespace pghive
