// Integration tests: full pipelines across modules — generation, noise,
// discovery, serialization, storage round-trips and baseline comparison.

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/serialization.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/experiment.h"
#include "eval/f1.h"
#include "graph/csv_io.h"

namespace pghive {
namespace {

TEST(IntegrationTest, GenerateDiscoverSerializeRoundTrip) {
  auto spec = MakeHetioSpec();
  GenerateOptions gen;
  gen.num_nodes = 800;
  gen.num_edges = 4000;
  auto g = GenerateGraph(spec, gen).value();

  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  EXPECT_GT(MajorityF1Nodes(g, *schema).f1, 0.95);

  std::string strict = ToPgSchema(*schema, "Hetio", PgSchemaMode::kStrict);
  std::string xsd = ToXsd(*schema);
  // Every discovered label appears in the STRICT serialization.
  for (const auto& t : schema->node_types) {
    for (const auto& label : t.labels) {
      EXPECT_NE(strict.find(label), std::string::npos) << label;
    }
  }
  EXPECT_NE(xsd.find("xs:complexType"), std::string::npos);
}

TEST(IntegrationTest, CsvStorageRoundTripPreservesDiscovery) {
  auto spec = MakePoleSpec();
  GenerateOptions gen;
  gen.num_nodes = 600;
  gen.num_edges = 1000;
  auto g = GenerateGraph(spec, gen).value();
  auto reloaded = GraphFromCsv(NodesToCsv(g), EdgesToCsv(g)).value();

  PgHivePipeline pipeline;
  auto s1 = pipeline.DiscoverSchema(g);
  auto s2 = pipeline.DiscoverSchema(reloaded);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->node_types.size(), s2->node_types.size());
  EXPECT_EQ(s1->edge_types.size(), s2->edge_types.size());
}

TEST(IntegrationTest, IncrementalEndsCoveringStaticSchema) {
  auto spec = MakeCord19Spec();
  GenerateOptions gen;
  gen.num_nodes = 1600;
  gen.num_edges = 1600;
  auto g = GenerateGraph(spec, gen).value();

  PgHivePipeline static_pipeline;
  auto static_schema = static_pipeline.DiscoverSchema(g);
  ASSERT_TRUE(static_schema.ok());

  IncrementalDiscoverer discoverer;
  for (const auto& batch : SplitIntoBatches(g, 8)) {
    ASSERT_TRUE(discoverer.Feed(batch).ok());
  }
  const SchemaGraph& incr = discoverer.Finish(g);
  // The incremental schema covers everything the static one discovered
  // (both are complete w.r.t. the data, §4.7).
  EXPECT_TRUE(SchemaCovers(incr, *static_schema));
  EXPECT_TRUE(SchemaCovers(*static_schema, incr));
  EXPECT_GT(MajorityF1Nodes(g, incr).f1, 0.95);
}

TEST(IntegrationTest, PgHiveBeatsBaselinesUnderNoise) {
  // The paper's headline comparison, in miniature: at 40% noise on a
  // heterogeneous dataset, PG-HIVE nodes stay accurate while GMMSchema
  // degrades; baselines cannot run at 50% label availability at all.
  ExperimentConfig config;
  config.size_scale = 0.25;
  auto clean = GenerateForExperiment(MakeIcijSpec(), config).value();
  NoiseOptions nopt;
  nopt.property_removal = 0.4;
  auto noisy = InjectNoise(clean, nopt).value();

  auto hive = RunMethod(noisy, Method::kPgHiveElsh, config);
  auto gmm = RunMethod(noisy, Method::kGmmSchema, config);
  ASSERT_TRUE(hive.ran);
  ASSERT_TRUE(gmm.ran);
  EXPECT_GT(hive.node_f1.f1, gmm.node_f1.f1);
  EXPECT_GT(hive.node_f1.f1, 0.9);

  NoiseOptions half;
  half.label_availability = 0.5;
  auto semi = InjectNoise(clean, half).value();
  EXPECT_FALSE(RunMethod(semi, Method::kGmmSchema, config).ran);
  EXPECT_FALSE(RunMethod(semi, Method::kSchemI, config).ran);
  auto hive_semi = RunMethod(semi, Method::kPgHiveElsh, config);
  ASSERT_TRUE(hive_semi.ran);
  EXPECT_GT(hive_semi.node_f1.f1, 0.85);
}

TEST(IntegrationTest, MultiLabelDatasetAdvantage) {
  // On MB6 (types = co-occurring label sets) PG-HIVE resolves the label
  // sets while SchemI's per-label flattening mixes them.
  ExperimentConfig config;
  config.size_scale = 0.25;
  auto g = GenerateForExperiment(MakeMb6Spec(), config).value();
  auto hive = RunMethod(g, Method::kPgHiveMinHash, config);
  auto schemi = RunMethod(g, Method::kSchemI, config);
  ASSERT_TRUE(hive.ran);
  ASSERT_TRUE(schemi.ran);
  EXPECT_GT(hive.node_f1.f1, schemi.node_f1.f1 + 0.2);
}

TEST(IntegrationTest, RuntimeInsensitiveToNoise) {
  // Figure 5's PG-HIVE property: noise does not change the runtime shape
  // (within generous tolerance at tiny scales).
  ExperimentConfig config;
  config.size_scale = 0.5;
  auto clean = GenerateForExperiment(MakeLdbcSpec(), config).value();
  auto r0 = RunMethod(clean, Method::kPgHiveMinHash, config);
  NoiseOptions nopt;
  nopt.property_removal = 0.4;
  auto noisy = InjectNoise(clean, nopt).value();
  auto r40 = RunMethod(noisy, Method::kPgHiveMinHash, config);
  ASSERT_TRUE(r0.ran);
  ASSERT_TRUE(r40.ran);
  EXPECT_LT(r40.seconds, r0.seconds * 5 + 0.5);
}

TEST(IntegrationTest, AbstractTypesEmergeWithoutLabels) {
  ExperimentConfig config;
  config.size_scale = 0.2;
  auto clean = GenerateForExperiment(MakeFib25Spec(), config).value();
  NoiseOptions nopt;
  nopt.label_availability = 0.0;
  auto unlabeled = InjectNoise(clean, nopt).value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(unlabeled);
  ASSERT_TRUE(schema.ok());
  for (const auto& t : schema->node_types) {
    EXPECT_TRUE(t.is_abstract);
    EXPECT_TRUE(t.labels.empty());
  }
  EXPECT_GT(MajorityF1Nodes(unlabeled, *schema).f1, 0.8);
}

TEST(IntegrationTest, SampledDatatypesMostlyAgreeWithFullScan) {
  // Figure 8's claim in miniature: sampling-based inference disagrees with
  // the full scan on only a small fraction of properties.
  ExperimentConfig config;
  config.size_scale = 0.5;
  auto g = GenerateForExperiment(MakeIcijSpec(), config).value();
  PipelineOptions full_opt;
  PgHivePipeline full_pipeline(full_opt);
  auto full = full_pipeline.DiscoverSchema(g);
  ASSERT_TRUE(full.ok());

  PipelineOptions sample_opt;
  sample_opt.datatypes.sample = true;
  sample_opt.datatypes.min_sample = 50;
  PgHivePipeline sample_pipeline(sample_opt);
  auto sampled = sample_pipeline.DiscoverSchema(g);
  ASSERT_TRUE(sampled.ok());

  size_t total = 0, disagree = 0;
  ASSERT_EQ(full->node_types.size(), sampled->node_types.size());
  for (size_t t = 0; t < full->node_types.size(); ++t) {
    for (const auto& [key, c] : full->node_types[t].constraints) {
      ++total;
      auto it = sampled->node_types[t].constraints.find(key);
      ASSERT_NE(it, sampled->node_types[t].constraints.end());
      disagree += it->second.type != c.type;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_LT(static_cast<double>(disagree) / total, 0.25);
}

}  // namespace
}  // namespace pghive
