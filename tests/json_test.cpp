// Tests for the JSON model/parser/writer and schema JSON persistence.

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/pipeline.h"
#include "core/schema_json.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

// ---------- JsonValue basics ----------

TEST(JsonValueTest, Kinds) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.5).is_number());
  EXPECT_TRUE(JsonValue(42).is_number());
  EXPECT_TRUE(JsonValue("x").is_string());
  EXPECT_TRUE(JsonValue(JsonArray{}).is_array());
  EXPECT_TRUE(JsonValue(JsonObject{}).is_object());
}

TEST(JsonValueTest, ObjectAccess) {
  JsonObject obj;
  obj.emplace("a", 1);
  obj.emplace("s", "text");
  obj.emplace("b", true);
  JsonValue v(std::move(obj));
  EXPECT_EQ(v["a"].AsInt(), 1);
  EXPECT_TRUE(v["missing"].is_null());
  EXPECT_EQ(v.GetString("s").value(), "text");
  EXPECT_TRUE(v.GetBool("b").value());
  EXPECT_FALSE(v.GetString("a").ok());  // kind mismatch
  EXPECT_FALSE(v.GetInt("nope").ok());
}

TEST(JsonDumpTest, CompactForms) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-1.5).Dump(), "-1.5");
  EXPECT_EQ(JsonValue("a\"b\n").Dump(), "\"a\\\"b\\n\"");
  EXPECT_EQ(JsonValue(JsonArray{1, 2}).Dump(), "[1,2]");
  JsonObject obj;
  obj.emplace("k", "v");
  EXPECT_EQ(JsonValue(std::move(obj)).Dump(), "{\"k\":\"v\"}");
}

TEST(JsonDumpTest, PrettyIndents) {
  JsonObject obj;
  obj.emplace("list", JsonArray{1});
  std::string pretty = JsonValue(std::move(obj)).Pretty();
  EXPECT_NE(pretty.find("{\n  \"list\": [\n    1\n  ]\n}"),
            std::string::npos);
}

TEST(JsonDumpTest, DeterministicKeyOrder) {
  JsonObject obj;
  obj.emplace("z", 1);
  obj.emplace("a", 2);
  EXPECT_EQ(JsonValue(std::move(obj)).Dump(), "{\"a\":2,\"z\":1}");
}

// ---------- parser ----------

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_EQ(ParseJson("42")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e2")->AsDouble(), -250.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedStructure) {
  auto v = ParseJson(R"({"a": [1, {"b": null}, "s"], "c": {"d": false}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)["a"].AsArray().size(), 3u);
  EXPECT_TRUE((*v)["a"].AsArray()[1]["b"].is_null());
  EXPECT_FALSE((*v)["c"]["d"].AsBool());
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("line\nquote\"back\\slash\tuA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "line\nquote\"back\\slash\tuA");
}

TEST(JsonParseTest, UnicodeEscapeUtf8) {
  auto v = ParseJson(R"("é€")");  // é €
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParseTest, Whitespace) {
  auto v = ParseJson("  {\n \"a\" :\t[ 1 , 2 ]\r\n} ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)["a"].AsArray().size(), 2u);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());          // trailing content
  EXPECT_FALSE(ParseJson("\"\\u00zz\"").ok());  // bad hex
  EXPECT_FALSE(ParseJson("--3").ok());
}

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonRoundTripTest, DumpParseDump) {
  const char* doc =
      R"({"arr":[1,2.5,"s",null,true],"nested":{"k":"v"},"n":-7})";
  auto v1 = ParseJson(doc);
  ASSERT_TRUE(v1.ok());
  auto v2 = ParseJson(v1->Dump());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);
  EXPECT_EQ(v1->Dump(), v2->Dump());
  // Pretty form parses back to the same value too.
  auto v3 = ParseJson(v1->Pretty());
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v1, *v3);
}

// ---------- schema JSON ----------

SchemaGraph DiscoveredFigure1() {
  PgHivePipeline pipeline;
  return pipeline.DiscoverSchema(MakeFigure1Graph()).value();
}

TEST(SchemaJsonTest, RoundTripPreservesEverything) {
  SchemaGraph schema = DiscoveredFigure1();
  SchemaJsonOptions opt;
  opt.include_instances = true;
  auto loaded = SchemaFromJson(SchemaToJson(schema, opt));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->node_types.size(), schema.node_types.size());
  ASSERT_EQ(loaded->edge_types.size(), schema.edge_types.size());
  for (size_t i = 0; i < schema.node_types.size(); ++i) {
    const auto& a = schema.node_types[i];
    const auto& b = loaded->node_types[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.property_keys, b.property_keys);
    EXPECT_EQ(a.is_abstract, b.is_abstract);
    EXPECT_EQ(a.instances, b.instances);
    ASSERT_EQ(a.constraints.size(), b.constraints.size());
    for (const auto& [key, c] : a.constraints) {
      EXPECT_EQ(b.constraints.at(key).type, c.type);
      EXPECT_EQ(b.constraints.at(key).mandatory, c.mandatory);
    }
  }
  for (size_t i = 0; i < schema.edge_types.size(); ++i) {
    const auto& a = schema.edge_types[i];
    const auto& b = loaded->edge_types[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.source_labels, b.source_labels);
    EXPECT_EQ(a.target_labels, b.target_labels);
    EXPECT_EQ(a.cardinality, b.cardinality);
    EXPECT_EQ(a.max_out_degree, b.max_out_degree);
    EXPECT_EQ(a.max_in_degree, b.max_in_degree);
  }
}

TEST(SchemaJsonTest, InstancesOmittedByDefault) {
  SchemaGraph schema = DiscoveredFigure1();
  auto loaded = SchemaFromJson(SchemaToJson(schema));
  ASSERT_TRUE(loaded.ok());
  for (const auto& t : loaded->node_types) {
    EXPECT_TRUE(t.instances.empty());
  }
}

TEST(SchemaJsonTest, RejectsForeignDocuments) {
  EXPECT_FALSE(SchemaFromJson("{}").ok());
  EXPECT_FALSE(SchemaFromJson("[1,2]").ok());
  EXPECT_FALSE(SchemaFromJson(R"({"format":"something-else"})").ok());
  EXPECT_FALSE(SchemaFromJson("not json at all").ok());
}

TEST(SchemaJsonTest, RejectsBadDatatypeAndCardinality) {
  std::string bad_type = R"({"format":"pghive-schema","version":1,
    "node_types":[{"name":"T","labels":[],"properties":["p"],
                   "constraints":{"p":{"type":"Quantum","mandatory":true}},
                   "abstract":false}],
    "edge_types":[]})";
  EXPECT_FALSE(SchemaFromJson(bad_type).ok());
  std::string bad_card = R"({"format":"pghive-schema","version":1,
    "node_types":[],
    "edge_types":[{"name":"E","labels":[],"properties":[],
                   "source_labels":[],"target_labels":[],
                   "cardinality":"7:7","abstract":false}]})";
  EXPECT_FALSE(SchemaFromJson(bad_card).ok());
}

TEST(SchemaJsonTest, FileRoundTrip) {
  SchemaGraph schema = DiscoveredFigure1();
  std::string path = testing::TempDir() + "/pghive_schema.json";
  ASSERT_TRUE(SaveSchemaJson(schema, path).ok());
  auto loaded = LoadSchemaJson(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node_types.size(), schema.node_types.size());
}

TEST(SchemaJsonTest, EmptySchema) {
  auto loaded = SchemaFromJson(SchemaToJson(SchemaGraph()));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_types(), 0u);
}

}  // namespace
}  // namespace pghive
