// Property-based tests: invariants of the paper's §4.7 guarantees, checked
// over parameterized sweeps of seeds, datasets and noise levels.

#include <gtest/gtest.h>

#include <cmath>

#include "core/incremental.h"
#include "core/pgschema_parser.h"
#include "core/pipeline.h"
#include "core/serialization.h"
#include "core/validation.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/f1.h"
#include "lsh/collision_model.h"
#include "lsh/minhash_lsh.h"

namespace pghive {
namespace {

struct CaseParam {
  const char* dataset;
  uint64_t seed;
  double noise;
  double label_availability;
};

std::ostream& operator<<(std::ostream& os, const CaseParam& p) {
  return os << p.dataset << "_seed" << p.seed << "_noise"
            << static_cast<int>(p.noise * 100) << "_lab"
            << static_cast<int>(p.label_availability * 100);
}

PropertyGraph MakeCase(const CaseParam& p) {
  auto spec = DatasetSpecByName(p.dataset).value();
  GenerateOptions gen;
  gen.num_nodes = 600;
  gen.num_edges = 1200;
  gen.seed = p.seed;
  auto g = GenerateGraph(spec, gen).value();
  NoiseOptions nopt;
  nopt.property_removal = p.noise;
  nopt.label_availability = p.label_availability;
  nopt.seed = p.seed + 1;
  return InjectNoise(g, nopt).value();
}

class SchemaInvariantsTest : public testing::TestWithParam<CaseParam> {};

// §4.7 "Type completeness": for every node there is a type covering its
// labels and properties; symmetrically for edges. Nothing is lost.
TEST_P(SchemaInvariantsTest, TypeCompleteness) {
  PropertyGraph g = MakeCase(GetParam());
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());

  std::vector<int> node_type(g.num_nodes(), -1);
  for (size_t t = 0; t < schema->node_types.size(); ++t) {
    for (NodeId id : schema->node_types[t].instances) node_type[id] = t;
  }
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    ASSERT_GE(node_type[i], 0);
    const auto& t = schema->node_types[node_type[i]];
    for (const auto& l : g.node(i).labels) EXPECT_TRUE(t.labels.count(l));
    for (const auto& [k, v] : g.node(i).properties) {
      EXPECT_TRUE(t.property_keys.count(k));
    }
  }
  std::vector<int> edge_type(g.num_edges(), -1);
  for (size_t t = 0; t < schema->edge_types.size(); ++t) {
    for (EdgeId id : schema->edge_types[t].instances) edge_type[id] = t;
  }
  for (size_t i = 0; i < g.num_edges(); ++i) {
    ASSERT_GE(edge_type[i], 0);
    const auto& t = schema->edge_types[edge_type[i]];
    for (const auto& l : g.edge(i).labels) EXPECT_TRUE(t.labels.count(l));
    for (const auto& [k, v] : g.edge(i).properties) {
      EXPECT_TRUE(t.property_keys.count(k));
    }
  }
}

// §4.7 "Property constraints": MANDATORY implies present in every instance.
TEST_P(SchemaInvariantsTest, MandatorySoundness) {
  PropertyGraph g = MakeCase(GetParam());
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  for (const auto& t : schema->node_types) {
    for (const auto& [key, c] : t.constraints) {
      if (!c.mandatory) continue;
      for (NodeId id : t.instances) {
        EXPECT_TRUE(g.node(id).HasProperty(key))
            << t.name << "." << key << " marked mandatory but missing";
      }
    }
  }
  for (const auto& t : schema->edge_types) {
    for (const auto& [key, c] : t.constraints) {
      if (!c.mandatory) continue;
      for (EdgeId id : t.instances) {
        EXPECT_TRUE(g.edge(id).HasProperty(key));
      }
    }
  }
}

// §4.7 "Data type inference": the inferred datatype is compatible with
// every observed value (possibly generalized to String).
TEST_P(SchemaInvariantsTest, DataTypeCompatibility) {
  PropertyGraph g = MakeCase(GetParam());
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  auto compatible = [](DataType inferred, DataType observed) {
    return inferred == observed || inferred == DataType::kString ||
           (inferred == DataType::kDouble && observed == DataType::kInt) ||
           (inferred == DataType::kTimestamp && observed == DataType::kDate);
  };
  for (const auto& t : schema->node_types) {
    for (NodeId id : t.instances) {
      for (const auto& [k, v] : g.node(id).properties) {
        auto it = t.constraints.find(k);
        ASSERT_NE(it, t.constraints.end());
        EXPECT_TRUE(compatible(it->second.type, v.type()))
            << t.name << "." << k << ": " << DataTypeName(it->second.type)
            << " vs observed " << DataTypeName(v.type());
      }
    }
  }
}

// §4.7 "Cardinalities": (max_out, max_in) are sound upper bounds on the
// observed per-endpoint fan counts.
TEST_P(SchemaInvariantsTest, CardinalityUpperBounds) {
  PropertyGraph g = MakeCase(GetParam());
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  for (const auto& t : schema->edge_types) {
    std::map<NodeId, std::set<NodeId>> out, in;
    for (EdgeId id : t.instances) {
      out[g.edge(id).source].insert(g.edge(id).target);
      in[g.edge(id).target].insert(g.edge(id).source);
    }
    for (const auto& [s, tgts] : out) {
      EXPECT_LE(tgts.size(), t.max_out_degree);
    }
    for (const auto& [s, srcs] : in) {
      EXPECT_LE(srcs.size(), t.max_in_degree);
    }
  }
}

// The discovered schema LOOSE-validates the very graph it was discovered
// from (discovery and validation are inverse views of coverage).
TEST_P(SchemaInvariantsTest, DiscoveredSchemaValidatesOwnGraph) {
  PropertyGraph g = MakeCase(GetParam());
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  ValidationReport report = ValidateGraph(g, *schema, {});
  EXPECT_TRUE(report.valid()) << report.Summary();
}

// serialize -> parse -> serialize is a fixpoint: the second serialization
// is byte-identical to the first (modulo the recovered type names feeding
// the same sanitizer).
TEST_P(SchemaInvariantsTest, PgSchemaSerializationFixpoint) {
  PropertyGraph g = MakeCase(GetParam());
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  std::string first = ToPgSchema(*schema, "G", PgSchemaMode::kStrict);
  auto parsed = ParsePgSchema(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::string second = ToPgSchema(parsed->schema, "G", PgSchemaMode::kStrict);
  EXPECT_EQ(first, second);
}

// §4.6 "Incrementality": the schema sequence is a monotone chain.
TEST_P(SchemaInvariantsTest, IncrementalMonotoneChain) {
  PropertyGraph g = MakeCase(GetParam());
  IncrementalDiscoverer discoverer;
  SchemaGraph previous;
  for (const auto& batch : SplitIntoBatches(g, 4)) {
    ASSERT_TRUE(discoverer.Feed(batch).ok());
    EXPECT_TRUE(SchemaCovers(discoverer.schema(), previous));
    previous = discoverer.schema();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemaInvariantsTest,
    testing::Values(CaseParam{"POLE", 1, 0.0, 1.0},
                    CaseParam{"POLE", 2, 0.4, 0.5},
                    CaseParam{"MB6", 3, 0.2, 1.0},
                    CaseParam{"MB6", 4, 0.4, 0.0},
                    CaseParam{"HET.IO", 5, 0.2, 0.5},
                    CaseParam{"ICIJ", 6, 0.3, 0.5},
                    CaseParam{"ICIJ", 7, 0.4, 0.0},
                    CaseParam{"CORD19", 8, 0.1, 1.0},
                    CaseParam{"LDBC", 9, 0.2, 0.5},
                    CaseParam{"IYP", 10, 0.2, 1.0}));

// ---------- MinHash estimator accuracy over random sets ----------

class MinHashEstimateTest : public testing::TestWithParam<int> {};

TEST_P(MinHashEstimateTest, AgreementTracksTrueJaccard) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  MinHashLshOptions opt;
  opt.num_hashes = 256;
  opt.seed = seed;
  auto lsh = MinHashLsh::Create(opt).value();
  for (int trial = 0; trial < 10; ++trial) {
    // Random overlapping sets.
    std::set<std::string> a, b;
    size_t shared = 1 + rng.UniformU32(20);
    size_t only_a = rng.UniformU32(20);
    size_t only_b = rng.UniformU32(20);
    for (size_t i = 0; i < shared; ++i) {
      a.insert("s" + std::to_string(i));
      b.insert("s" + std::to_string(i));
    }
    for (size_t i = 0; i < only_a; ++i) a.insert("a" + std::to_string(i));
    for (size_t i = 0; i < only_b; ++i) b.insert("b" + std::to_string(i));
    double truth = static_cast<double>(shared) /
                   static_cast<double>(shared + only_a + only_b);
    auto sa = lsh.Signature({a.begin(), a.end()});
    auto sb = lsh.Signature({b.begin(), b.end()});
    double est = MinHashLsh::SignatureAgreement(sa, sb);
    // 256 hashes: standard error <= 0.5/16; allow 4 sigma.
    EXPECT_NEAR(est, truth, 0.13);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinHashEstimateTest,
                         testing::Values(11, 22, 33, 44, 55));

// ---------- ELSH collision probability vs theory ----------

class ElshTheoryTest : public testing::TestWithParam<double> {};

TEST_P(ElshTheoryTest, EmpiricalCollisionMatchesClosedForm) {
  double distance = GetParam();
  const double bucket = 2.0;
  EuclideanLshOptions opt;
  opt.bucket_length = bucket;
  opt.num_tables = 400;  // 400 independent single-projection tables
  opt.hashes_per_table = 1;
  opt.seed = 99;
  auto lsh = EuclideanLsh::Create(8, opt).value();

  Rng rng(1234);
  double hits = 0, total = 0;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<float> a(8), b(8);
    std::vector<double> dir(8);
    double n = 0;
    for (auto& d : dir) {
      d = rng.Normal();
      n += d * d;
    }
    n = std::sqrt(n);
    for (int i = 0; i < 8; ++i) {
      a[i] = static_cast<float>(rng.Normal());
      b[i] = a[i] + static_cast<float>(distance * dir[i] / n);
    }
    auto ka = lsh.Hash(a);
    auto kb = lsh.Hash(b);
    for (size_t t = 0; t < ka.size(); ++t) {
      hits += ka[t] == kb[t];
      ++total;
    }
  }
  double empirical = hits / total;
  double theory = ElshCollisionProbability(distance, bucket);
  EXPECT_NEAR(empirical, theory, 0.05) << "d=" << distance;
}

INSTANTIATE_TEST_SUITE_P(Distances, ElshTheoryTest,
                         testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0));

// ---------- noise robustness property of the full pipeline ----------

class RobustnessTest
    : public testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(RobustnessTest, FullyLabeledDiscoveryStaysAccurateUnderNoise) {
  auto [dataset, noise] = GetParam();
  auto spec = DatasetSpecByName(dataset).value();
  GenerateOptions gen;
  gen.num_nodes = 800;
  gen.num_edges = 1600;
  auto clean = GenerateGraph(spec, gen).value();
  NoiseOptions nopt;
  nopt.property_removal = noise;
  auto g = InjectNoise(clean, nopt).value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  // The paper's headline: F1* above 0.9 under property noise when labels
  // are available.
  EXPECT_GT(MajorityF1Nodes(g, *schema).f1, 0.9);
  EXPECT_GT(MajorityF1Edges(g, *schema).f1, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RobustnessTest,
    testing::Combine(testing::Values("POLE", "MB6", "ICIJ", "LDBC"),
                     testing::Values(0.0, 0.2, 0.4)));

}  // namespace
}  // namespace pghive
