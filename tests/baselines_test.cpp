// Tests for the GMMSchema and SchemI baseline re-implementations.

#include <gtest/gtest.h>

#include "baselines/gmm_schema.h"
#include "baselines/schemi.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/f1.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

PropertyGraph SmallPole() {
  GenerateOptions gen;
  gen.num_nodes = 800;
  gen.num_edges = 1400;
  return GenerateGraph(MakePoleSpec(), gen).value();
}

// ---------- GMMSchema ----------

TEST(GmmSchemaTest, RefusesUnlabeledNodes) {
  PropertyGraph g = MakeFigure1Graph();  // Alice is unlabeled
  auto r = RunGmmSchema(g);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GmmSchemaTest, RefusesEmptyGraph) {
  EXPECT_FALSE(RunGmmSchema(PropertyGraph()).ok());
}

TEST(GmmSchemaTest, DiscoversNodeTypesOnly) {
  PropertyGraph g = SmallPole();
  auto schema = RunGmmSchema(g);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->edge_types.empty());  // Table 1: nodes only
  EXPECT_GT(schema->node_types.size(), 0u);
}

TEST(GmmSchemaTest, HighQualityOnCleanData) {
  PropertyGraph g = SmallPole();
  auto schema = RunGmmSchema(g);
  ASSERT_TRUE(schema.ok());
  EXPECT_GT(MajorityF1Nodes(g, *schema).f1, 0.85);
}

TEST(GmmSchemaTest, DegradesUnderPropertyNoise) {
  GenerateOptions gen;
  gen.num_nodes = 1500;
  gen.num_edges = 0;
  auto clean = GenerateGraph(MakeIcijSpec(), gen).value();
  auto clean_schema = RunGmmSchema(clean);
  ASSERT_TRUE(clean_schema.ok());
  double clean_f1 = MajorityF1Nodes(clean, *clean_schema).f1;

  NoiseOptions nopt;
  nopt.property_removal = 0.4;
  auto noisy = InjectNoise(clean, nopt).value();
  auto noisy_schema = RunGmmSchema(noisy);
  ASSERT_TRUE(noisy_schema.ok());
  double noisy_f1 = MajorityF1Nodes(noisy, *noisy_schema).f1;
  EXPECT_LT(noisy_f1, clean_f1 - 0.05);
}

TEST(GmmSchemaTest, EveryNodeAssignedExactlyOnce) {
  PropertyGraph g = SmallPole();
  auto schema = RunGmmSchema(g);
  ASSERT_TRUE(schema.ok());
  std::vector<int> seen(g.num_nodes(), 0);
  for (const auto& t : schema->node_types) {
    for (NodeId id : t.instances) ++seen[id];
  }
  for (size_t i = 0; i < g.num_nodes(); ++i) EXPECT_EQ(seen[i], 1);
}

TEST(GmmSchemaTest, SamplingModeStillAssignsAllNodes) {
  GmmSchemaOptions opt;
  opt.sample_size = 100;  // force posterior prediction for most nodes
  PropertyGraph g = SmallPole();
  auto schema = RunGmmSchema(g, opt);
  ASSERT_TRUE(schema.ok());
  size_t assigned = 0;
  for (const auto& t : schema->node_types) assigned += t.instances.size();
  EXPECT_EQ(assigned, g.num_nodes());
}

// ---------- SchemI ----------

TEST(SchemITest, RefusesUnlabeledElements) {
  PropertyGraph g = MakeFigure1Graph();
  auto r = RunSchemI(g);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SchemITest, RefusesUnlabeledEdge) {
  PropertyGraph g;
  NodeId a = g.AddNode({"A"}, {});
  NodeId b = g.AddNode({"B"}, {});
  ASSERT_TRUE(g.AddEdge(a, b, {}, {}).ok());  // unlabeled edge
  EXPECT_FALSE(RunSchemI(g).ok());
}

TEST(SchemITest, PerfectOnSingleLabelDataset) {
  PropertyGraph g = SmallPole();
  auto schema = RunSchemI(g);
  ASSERT_TRUE(schema.ok());
  EXPECT_DOUBLE_EQ(MajorityF1Nodes(g, *schema).f1, 1.0);
}

TEST(SchemITest, FlattensMultiLabelTypes) {
  // MB6-style: types defined by co-occurring label sets. SchemI keys types
  // by a single label, mixing types that share the alphabetically first
  // label (the documented weakness).
  GenerateOptions gen;
  gen.num_nodes = 1000;
  gen.num_edges = 1500;
  auto g = GenerateGraph(MakeMb6Spec(), gen).value();
  auto schema = RunSchemI(g);
  ASSERT_TRUE(schema.ok());
  double f1 = MajorityF1Nodes(g, *schema).f1;
  EXPECT_LT(f1, 0.9);
  EXPECT_GT(f1, 0.3);
}

TEST(SchemITest, EdgeTypesCollapseByLabel) {
  // POLE reuses HAS_POSTCODE between two endpoint pairs -> SchemI sees one
  // type where the ground truth has two.
  PropertyGraph g;
  NodeId loc = g.AddNode({"Location"}, {}, "Location");
  NodeId area = g.AddNode({"Area"}, {}, "Area");
  NodeId pc = g.AddNode({"PostCode"}, {}, "PostCode");
  ASSERT_TRUE(g.AddEdge(loc, pc, {"HAS_POSTCODE"}, {}, "HP_L").ok());
  ASSERT_TRUE(g.AddEdge(area, pc, {"HAS_POSTCODE"}, {}, "HP_A").ok());
  auto schema = RunSchemI(g);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->edge_types.size(), 1u);
  EXPECT_EQ(schema->edge_types[0].instances.size(), 2u);
}

TEST(SchemITest, AggregatesPropertiesPerType) {
  PropertyGraph g;
  g.AddNode({"T"}, {{"a", Value::Int(1)}}, "T");
  g.AddNode({"T"}, {{"b", Value::Int(2)}}, "T");
  auto schema = RunSchemI(g);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->node_types.size(), 1u);
  EXPECT_EQ(schema->node_types[0].property_keys,
            (std::set<std::string>{"a", "b"}));
}

TEST(SchemITest, EdgeEndpointsAggregated) {
  PropertyGraph g = SmallPole();
  auto schema = RunSchemI(g);
  ASSERT_TRUE(schema.ok());
  for (const auto& t : schema->edge_types) {
    EXPECT_FALSE(t.source_labels.empty());
    EXPECT_FALSE(t.target_labels.empty());
  }
}

}  // namespace
}  // namespace pghive
