// Unit tests for the dataset generators: spec validation, generation
// semantics, the eight paper specs and noise injection.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "graph/graph_stats.h"

namespace pghive {
namespace {

DatasetSpec TinySpec() {
  DatasetSpec s;
  s.name = "tiny";
  NodeTypeSpec a;
  a.name = "A";
  a.labels = {"A"};
  a.properties = {{"x", DataType::kInt, 1.0, 0.0, DataType::kString},
                  {"opt", DataType::kString, 0.5, 0.0, DataType::kString}};
  NodeTypeSpec b;
  b.name = "B";
  b.labels = {"B"};
  b.properties = {{"y", DataType::kDouble, 1.0, 0.0, DataType::kString}};
  s.node_types = {a, b};
  EdgeTypeSpec e;
  e.name = "R";
  e.label = "R";
  e.source_type = "A";
  e.target_type = "B";
  e.cardinality = CardinalityClass::kManyToOne;
  s.edge_types = {e};
  s.default_nodes = 200;
  s.default_edges = 300;
  return s;
}

// ---------- spec validation ----------

TEST(DatasetSpecTest, ValidSpecPasses) {
  EXPECT_TRUE(TinySpec().Validate().ok());
}

TEST(DatasetSpecTest, RejectsNoNodeTypes) {
  DatasetSpec s;
  s.name = "x";
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatasetSpecTest, RejectsDuplicateTypeNames) {
  auto s = TinySpec();
  s.node_types.push_back(s.node_types[0]);
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatasetSpecTest, RejectsUnknownEndpoint) {
  auto s = TinySpec();
  s.edge_types[0].target_type = "Nope";
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatasetSpecTest, RejectsBadProbabilities) {
  auto s = TinySpec();
  s.node_types[0].properties[0].presence = 1.5;
  EXPECT_FALSE(s.Validate().ok());
  s = TinySpec();
  s.node_types[0].properties[0].outlier_rate = -0.1;
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatasetSpecTest, RejectsDuplicatePropertyKey) {
  auto s = TinySpec();
  s.node_types[0].properties.push_back(s.node_types[0].properties[0]);
  EXPECT_FALSE(s.Validate().ok());
}

TEST(DatasetSpecTest, RejectsNonPositiveWeight) {
  auto s = TinySpec();
  s.edge_types[0].weight = 0.0;
  EXPECT_FALSE(s.Validate().ok());
}

// ---------- generation ----------

TEST(GeneratorTest, RespectsRequestedSizes) {
  GenerateOptions opt;
  opt.num_nodes = 123;
  opt.num_edges = 77;
  auto g = GenerateGraph(TinySpec(), opt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 123u);
  EXPECT_LE(g->num_edges(), 77u);  // undersized pools may skip edges
  EXPECT_GT(g->num_edges(), 50u);
}

TEST(GeneratorTest, Deterministic) {
  GenerateOptions opt;
  opt.seed = 42;
  auto g1 = GenerateGraph(TinySpec(), opt);
  auto g2 = GenerateGraph(TinySpec(), opt);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  ASSERT_EQ(g1->num_nodes(), g2->num_nodes());
  for (size_t i = 0; i < g1->num_nodes(); ++i) {
    EXPECT_EQ(g1->node(i).truth_type, g2->node(i).truth_type);
    EXPECT_EQ(g1->node(i).properties.size(), g2->node(i).properties.size());
  }
}

TEST(GeneratorTest, SeedChangesOutput) {
  GenerateOptions a, b;
  a.seed = 1;
  b.seed = 2;
  auto g1 = GenerateGraph(TinySpec(), a);
  auto g2 = GenerateGraph(TinySpec(), b);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  bool any_diff = false;
  for (size_t i = 0; i < g1->num_nodes() && !any_diff; ++i) {
    any_diff = g1->node(i).truth_type != g2->node(i).truth_type ||
               g1->node(i).properties != g2->node(i).properties;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, EveryTypeRepresented) {
  auto g = GenerateGraph(TinySpec(), {});
  ASSERT_TRUE(g.ok());
  std::set<std::string> node_types, edge_types;
  for (const auto& n : g->nodes()) node_types.insert(n.truth_type);
  for (const auto& e : g->edges()) edge_types.insert(e.truth_type);
  EXPECT_EQ(node_types.size(), 2u);
  EXPECT_EQ(edge_types.size(), 1u);
}

TEST(GeneratorTest, MandatoryPropertiesAlwaysPresent) {
  auto g = GenerateGraph(TinySpec(), {});
  ASSERT_TRUE(g.ok());
  for (const auto& n : g->nodes()) {
    if (n.truth_type == "A") {
      EXPECT_TRUE(n.HasProperty("x"));
    } else {
      EXPECT_TRUE(n.HasProperty("y"));
    }
  }
}

TEST(GeneratorTest, OptionalPropertyPresenceNearSpec) {
  GenerateOptions opt;
  opt.num_nodes = 2000;
  opt.num_edges = 0;
  auto g = GenerateGraph(TinySpec(), opt);
  ASSERT_TRUE(g.ok());
  size_t a_total = 0, a_with_opt = 0;
  for (const auto& n : g->nodes()) {
    if (n.truth_type != "A") continue;
    ++a_total;
    a_with_opt += n.HasProperty("opt");
  }
  ASSERT_GT(a_total, 100u);
  double frac = static_cast<double>(a_with_opt) / a_total;
  EXPECT_NEAR(frac, 0.5, 0.07);
}

TEST(GeneratorTest, EdgesRespectEndpointTypes) {
  auto g = GenerateGraph(TinySpec(), {});
  ASSERT_TRUE(g.ok());
  for (const auto& e : g->edges()) {
    EXPECT_EQ(g->node(e.source).truth_type, "A");
    EXPECT_EQ(g->node(e.target).truth_type, "B");
  }
}

TEST(GeneratorTest, ManyToOneCardinalityRealized) {
  GenerateOptions opt;
  opt.num_nodes = 400;
  opt.num_edges = 600;
  auto g = GenerateGraph(TinySpec(), opt);
  ASSERT_TRUE(g.ok());
  // N:1 (source fresh, target reused): every source has at most 2 targets
  // (cursor wrap tolerance) and some target has many sources.
  std::map<NodeId, std::set<NodeId>> out, in;
  for (const auto& e : g->edges()) {
    out[e.source].insert(e.target);
    in[e.target].insert(e.source);
  }
  size_t max_in = 0;
  for (const auto& [t, srcs] : in) max_in = std::max(max_in, srcs.size());
  EXPECT_GT(max_in, 3u);
}

TEST(GeneratorTest, GenerateValueMatchesRequestedType) {
  Rng rng(5);
  EXPECT_EQ(GenerateValue(DataType::kInt, &rng).type(), DataType::kInt);
  EXPECT_EQ(GenerateValue(DataType::kDouble, &rng).type(), DataType::kDouble);
  EXPECT_EQ(GenerateValue(DataType::kBool, &rng).type(), DataType::kBool);
  EXPECT_EQ(GenerateValue(DataType::kDate, &rng).type(), DataType::kDate);
  EXPECT_EQ(GenerateValue(DataType::kTimestamp, &rng).type(),
            DataType::kTimestamp);
  EXPECT_EQ(GenerateValue(DataType::kString, &rng).type(), DataType::kString);
}

TEST(GeneratorTest, GeneratedLexicalFormsReparseToSameType) {
  Rng rng(6);
  for (DataType t : {DataType::kInt, DataType::kDouble, DataType::kBool,
                     DataType::kDate, DataType::kTimestamp}) {
    for (int i = 0; i < 20; ++i) {
      Value v = GenerateValue(t, &rng);
      EXPECT_EQ(InferDataTypeFromText(v.ToText()), t)
          << "lexical form: " << v.ToText();
    }
  }
}

// ---------- the eight paper specs ----------

class PaperSpecTest : public testing::TestWithParam<std::string> {};

TEST_P(PaperSpecTest, SpecValidates) {
  auto spec = DatasetSpecByName(GetParam());
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->Validate().ok());
}

TEST_P(PaperSpecTest, GeneratesWithExpectedTypeCounts) {
  auto spec = DatasetSpecByName(GetParam()).value();
  GenerateOptions opt;
  opt.num_nodes = std::max<size_t>(spec.node_types.size() * 20, 1500);
  opt.num_edges = std::max<size_t>(spec.edge_types.size() * 20, 2500);
  auto g = GenerateGraph(spec, opt);
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g, spec.name);
  EXPECT_EQ(stats.node_types, spec.node_types.size());
  EXPECT_EQ(stats.edge_types, spec.edge_types.size());
  // Patterns are at least as numerous as types (Def. 3.5/3.6).
  EXPECT_GE(stats.node_patterns, stats.node_types);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, PaperSpecTest,
                         testing::Values("POLE", "MB6", "HET.IO", "FIB25",
                                         "ICIJ", "CORD19", "LDBC", "IYP"));

TEST(PaperSpecsTest, TableTwoStructuralTargets) {
  // Ground-truth structural counts per Table 2 of the paper.
  struct Row {
    const char* name;
    size_t node_types, edge_types, node_labels, edge_labels;
  };
  const Row rows[] = {
      {"POLE", 11, 17, 11, 16},  {"MB6", 4, 5, 10, 3},
      {"HET.IO", 11, 24, 12, 24}, {"FIB25", 4, 5, 10, 3},
      {"ICIJ", 5, 14, 6, 14},     {"CORD19", 16, 16, 16, 16},
      {"LDBC", 7, 17, 8, 15},     {"IYP", 86, 25, 33, 25},
  };
  for (const Row& row : rows) {
    auto spec = DatasetSpecByName(row.name).value();
    EXPECT_EQ(spec.node_types.size(), row.node_types) << row.name;
    EXPECT_EQ(spec.edge_types.size(), row.edge_types) << row.name;
    std::set<std::string> nlabels, elabels;
    for (const auto& nt : spec.node_types) {
      nlabels.insert(nt.labels.begin(), nt.labels.end());
    }
    for (const auto& et : spec.edge_types) {
      if (!et.label.empty()) elabels.insert(et.label);
    }
    EXPECT_EQ(nlabels.size(), row.node_labels) << row.name;
    EXPECT_EQ(elabels.size(), row.edge_labels) << row.name;
  }
}

TEST(PaperSpecsTest, UnknownNameFails) {
  EXPECT_FALSE(DatasetSpecByName("NOT_A_DATASET").ok());
}

TEST(PaperSpecsTest, AllSpecsListedInTableOrder) {
  auto specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "POLE");
  EXPECT_EQ(specs[7].name, "IYP");
}

// ---------- noise ----------

TEST(NoiseTest, RejectsOutOfRangeOptions) {
  PropertyGraph g;
  g.AddNode({"A"}, {});
  NoiseOptions opt;
  opt.property_removal = 1.5;
  EXPECT_FALSE(InjectNoise(g, opt).ok());
  opt.property_removal = 0.0;
  opt.label_availability = -0.1;
  EXPECT_FALSE(InjectNoise(g, opt).ok());
}

TEST(NoiseTest, ZeroNoiseIsIdentity) {
  auto g = GenerateGraph(TinySpec(), {}).value();
  NoiseOptions opt;  // defaults: no removal, full labels
  auto noisy = InjectNoise(g, opt).value();
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(noisy.node(i).properties.size(), g.node(i).properties.size());
    EXPECT_EQ(noisy.node(i).labels, g.node(i).labels);
  }
}

TEST(NoiseTest, PropertyRemovalRateApproximate) {
  GenerateOptions gen;
  gen.num_nodes = 3000;
  gen.num_edges = 0;
  auto g = GenerateGraph(TinySpec(), gen).value();
  size_t before = 0;
  for (const auto& n : g.nodes()) before += n.properties.size();
  NoiseOptions opt;
  opt.property_removal = 0.3;
  auto noisy = InjectNoise(g, opt).value();
  size_t after = 0;
  for (const auto& n : noisy.nodes()) after += n.properties.size();
  double removed = 1.0 - static_cast<double>(after) / before;
  EXPECT_NEAR(removed, 0.3, 0.04);
}

TEST(NoiseTest, LabelAvailabilityZeroClearsAllLabels) {
  auto g = GenerateGraph(TinySpec(), {}).value();
  NoiseOptions opt;
  opt.label_availability = 0.0;
  auto noisy = InjectNoise(g, opt).value();
  for (const auto& n : noisy.nodes()) EXPECT_TRUE(n.labels.empty());
  for (const auto& e : noisy.edges()) EXPECT_TRUE(e.labels.empty());
}

TEST(NoiseTest, LabelAvailabilityHalfApproximate) {
  GenerateOptions gen;
  gen.num_nodes = 3000;
  gen.num_edges = 0;
  auto g = GenerateGraph(TinySpec(), gen).value();
  NoiseOptions opt;
  opt.label_availability = 0.5;
  auto noisy = InjectNoise(g, opt).value();
  size_t labeled = 0;
  for (const auto& n : noisy.nodes()) labeled += !n.labels.empty();
  EXPECT_NEAR(static_cast<double>(labeled) / noisy.num_nodes(), 0.5, 0.04);
}

TEST(NoiseTest, GroundTruthUntouched) {
  auto g = GenerateGraph(TinySpec(), {}).value();
  NoiseOptions opt;
  opt.property_removal = 0.4;
  opt.label_availability = 0.0;
  auto noisy = InjectNoise(g, opt).value();
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(noisy.node(i).truth_type, g.node(i).truth_type);
  }
}

TEST(NoiseTest, DeterministicInSeed) {
  auto g = GenerateGraph(TinySpec(), {}).value();
  NoiseOptions opt;
  opt.property_removal = 0.2;
  opt.seed = 5;
  auto n1 = InjectNoise(g, opt).value();
  auto n2 = InjectNoise(g, opt).value();
  for (size_t i = 0; i < n1.num_nodes(); ++i) {
    EXPECT_EQ(n1.node(i).properties.size(), n2.node(i).properties.size());
  }
}

}  // namespace
}  // namespace pghive
