// Tests for the CLI layer: argument parsing and the subcommands.

#include <gtest/gtest.h>

#include <sstream>

#include "cli/args.h"
#include "cli/commands.h"
#include "common/csv.h"
#include "graph/csv_io.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

Args MakeArgs(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"pghive"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args::Parse(static_cast<int>(argv.size()), argv.data());
}

// ---------- Args ----------

TEST(ArgsTest, PositionalAndFlags) {
  Args args = MakeArgs({"discover", "graph", "--method", "minhash",
                        "--theta=0.8", "--no-post"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "discover");
  EXPECT_EQ(args.GetString("method"), "minhash");
  EXPECT_DOUBLE_EQ(args.GetDouble("theta", 0), 0.8);
  EXPECT_TRUE(args.GetBool("no-post"));
  EXPECT_FALSE(args.Has("missing"));
  EXPECT_EQ(args.GetInt("missing", 7), 7);
}

TEST(ArgsTest, BareFlagIsTrue) {
  Args args = MakeArgs({"cmd", "--strict"});
  EXPECT_TRUE(args.GetBool("strict"));
  EXPECT_FALSE(MakeArgs({"cmd", "--strict=false"}).GetBool("strict"));
}

TEST(ArgsTest, UnknownFlags) {
  Args args = MakeArgs({"cmd", "--known", "1", "--typo", "2"});
  auto unknown = args.UnknownFlags({"known"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

// ---------- commands ----------

class CliTest : public testing::Test {
 protected:
  void SetUp() override {
    // Per-test path: ctest runs each test as its own process, and two
    // concurrently running CliTest processes must not race on the CSV.
    prefix_ = testing::TempDir() + "/pghive_cli_graph_" +
              testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_TRUE(SaveGraphCsv(MakeFigure1Graph(), prefix_).ok());
  }

  std::string Run(std::vector<std::string> tokens, Status* status = nullptr) {
    std::ostringstream out;
    Status s = RunCliCommand(MakeArgs(std::move(tokens)), out);
    if (status != nullptr) *status = s;
    return out.str();
  }

  std::string prefix_;
};

TEST_F(CliTest, HelpByDefault) {
  Status s;
  std::string out = Run({}, &s);
  EXPECT_TRUE(s.ok());
  EXPECT_NE(out.find("commands:"), std::string::npos);
  EXPECT_NE(Run({"help"}).find("discover"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  Status s;
  Run({"frobnicate"}, &s);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliTest, DiscoverSummary) {
  Status s;
  std::string out = Run({"discover", prefix_}, &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(out.find("4 node types"), std::string::npos);
  EXPECT_NE(out.find("Person"), std::string::npos);
  EXPECT_NE(out.find("MANDATORY"), std::string::npos);
  // Figure-1 graph carries ground truth -> quality line present.
  EXPECT_NE(out.find("F1*"), std::string::npos);
}

TEST_F(CliTest, DiscoverPgSchemaAndXsd) {
  std::string pgs = Run({"discover", prefix_, "--format", "pgschema"});
  EXPECT_NE(pgs.find("CREATE GRAPH TYPE"), std::string::npos);
  EXPECT_NE(pgs.find("STRICT"), std::string::npos);
  std::string loose =
      Run({"discover", prefix_, "--format", "pgschema", "--mode", "loose"});
  EXPECT_NE(loose.find("LOOSE"), std::string::npos);
  std::string xsd = Run({"discover", prefix_, "--format", "xsd"});
  EXPECT_NE(xsd.find("<xs:schema"), std::string::npos);
}

TEST_F(CliTest, DiscoverMinHashAndIncremental) {
  Status s;
  std::string out =
      Run({"discover", prefix_, "--method", "minhash", "--incremental", "2"},
          &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(out.find("node type"), std::string::npos);
}

TEST_F(CliTest, DiscoverRejectsBadFlags) {
  Status s;
  Run({"discover", prefix_, "--method", "quantum"}, &s);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  Run({"discover", prefix_, "--theta", "1.5"}, &s);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  Run({"discover"}, &s);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliTest, DiscoverMissingGraphFails) {
  Status s;
  Run({"discover", "/nonexistent/prefix"}, &s);
  EXPECT_FALSE(s.ok());
}

TEST_F(CliTest, GenerateThenStats) {
  std::string gen_prefix = testing::TempDir() + "/pghive_cli_pole";
  Status s;
  std::string out = Run({"generate", "POLE", gen_prefix, "--nodes", "200",
                         "--edges", "300", "--seed", "5"},
                        &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(out.find("200 nodes"), std::string::npos);

  std::string stats = Run({"stats", gen_prefix}, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_NE(stats.find("200"), std::string::npos);
  EXPECT_NE(stats.find("Dataset"), std::string::npos);
}

TEST_F(CliTest, GenerateUnknownDatasetFails) {
  Status s;
  Run({"generate", "NOPE", "/tmp/x"}, &s);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(CliTest, GenerateWithNoise) {
  std::string gen_prefix = testing::TempDir() + "/pghive_cli_noisy";
  Status s;
  Run({"generate", "POLE", gen_prefix, "--nodes", "150", "--edges", "200",
       "--labels", "0.0"},
      &s);
  ASSERT_TRUE(s.ok()) << s;
  auto g = LoadGraphCsv(gen_prefix).value();
  for (const auto& n : g.nodes()) EXPECT_TRUE(n.labels.empty());
}

TEST_F(CliTest, ValidateSelfPasses) {
  Status s;
  std::string out = Run({"validate", prefix_, prefix_}, &s);
  EXPECT_TRUE(s.ok()) << out;
  EXPECT_NE(out.find("elements valid"), std::string::npos);
}

TEST_F(CliTest, ValidateForeignDataFails) {
  // Validate an MB6 graph against the Figure-1 schema: nothing matches.
  std::string other = testing::TempDir() + "/pghive_cli_mb6";
  Status s;
  Run({"generate", "MB6", other, "--nodes", "100", "--edges", "100"}, &s);
  ASSERT_TRUE(s.ok());
  std::string out = Run({"validate", prefix_, other}, &s);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(out.find("NoMatchingType"), std::string::npos);
}

TEST_F(CliTest, DiffIdenticalGraphsEmpty) {
  Status s;
  std::string out = Run({"diff", prefix_, prefix_}, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_NE(out.find("no changes"), std::string::npos);
}

TEST_F(CliTest, DiffDetectsNewTypes) {
  // Same graph plus an extra labeled node type on one side.
  PropertyGraph g = MakeFigure1Graph();
  g.AddNode({"Gadget"}, {{"serial", Value::String("x1")}}, "Gadget");
  std::string extended = testing::TempDir() + "/pghive_cli_ext";
  ASSERT_TRUE(SaveGraphCsv(g, extended).ok());
  Status s;
  std::string out = Run({"diff", prefix_, extended}, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_NE(out.find("+ node types: Gadget"), std::string::npos);
}

TEST_F(CliTest, DiscoverJsonAndSavedSchemaValidate) {
  std::string schema_path = testing::TempDir() + "/pghive_cli_schema.json";
  Status s;
  std::string json =
      Run({"discover", prefix_, "--format", "json", "--save-schema",
           schema_path},
          &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(json.find("\"format\": \"pghive-schema\""), std::string::npos);

  // Validate the same graph against the saved schema file.
  std::string out = Run({"validate", prefix_, "--schema", schema_path}, &s);
  EXPECT_TRUE(s.ok()) << out;
  EXPECT_NE(out.find("elements valid"), std::string::npos);
}

TEST_F(CliTest, ValidateWithBadSchemaFileFails) {
  std::string path = testing::TempDir() + "/pghive_cli_bad_schema.json";
  ASSERT_TRUE(WriteFile(path, "{\"format\":\"nope\"}").ok());
  Status s;
  Run({"validate", prefix_, "--schema", path}, &s);
  EXPECT_FALSE(s.ok());
}

TEST_F(CliTest, DiscoverWithAliasFile) {
  // Rewrite Organization -> Org before discovery.
  std::string alias_path = testing::TempDir() + "/pghive_cli_aliases.txt";
  ASSERT_TRUE(WriteFile(alias_path,
                        "# test aliases\nOrganization = Org\n")
                  .ok());
  Status s;
  std::string out =
      Run({"discover", prefix_, "--aliases", alias_path}, &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(out.find("node type Org"), std::string::npos);
  EXPECT_EQ(out.find("node type Organization"), std::string::npos);
}

TEST_F(CliTest, DiscoverWithBadAliasFileFails) {
  std::string alias_path = testing::TempDir() + "/pghive_cli_bad_alias.txt";
  ASSERT_TRUE(WriteFile(alias_path, "no equals here\n").ok());
  Status s;
  Run({"discover", prefix_, "--aliases", alias_path}, &s);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST_F(CliTest, DatasetsLists) {
  Status s;
  std::string out = Run({"datasets"}, &s);
  ASSERT_TRUE(s.ok());
  for (const char* name :
       {"POLE", "MB6", "HET.IO", "FIB25", "ICIJ", "CORD19", "LDBC", "IYP"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace pghive
