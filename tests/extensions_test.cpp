// Tests for the future-work extensions: deletion handling (§4.6 future
// work) and label aliasing (§6 future work (c)).

#include <gtest/gtest.h>

#include "core/deletions.h"
#include "core/label_alias.h"
#include "core/pipeline.h"
#include "core/validation.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "eval/f1.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

// ---------- deletions ----------

struct DeletionFixture {
  PropertyGraph graph;
  SchemaGraph schema;

  DeletionFixture() {
    graph = MakeFigure1Graph();
    PgHivePipeline pipeline;
    schema = pipeline.DiscoverSchema(graph).value();
  }
};

TEST(DeletionsTest, NoDeletionsNoChange) {
  DeletionFixture f;
  size_t node_types = f.schema.node_types.size();
  DeletionStats stats = ApplyDeletions(f.graph, {}, {}, {}, &f.schema);
  EXPECT_EQ(stats.nodes_removed, 0u);
  EXPECT_EQ(f.schema.node_types.size(), node_types);
}

TEST(DeletionsTest, RemovingInstancesShrinksAssignments) {
  DeletionFixture f;
  // Delete Bob (node 0) and his WORKS_AT edge (edge 4).
  DeletionStats stats =
      ApplyDeletions(f.graph, {0}, {4}, {}, &f.schema);
  EXPECT_EQ(stats.nodes_removed, 1u);
  EXPECT_EQ(stats.edges_removed, 1u);
  int person = f.schema.FindNodeTypeByLabels({"Person"});
  ASSERT_GE(person, 0);
  EXPECT_EQ(f.schema.node_types[person].instances.size(), 2u);
}

TEST(DeletionsTest, EmptiedTypeDropped) {
  DeletionFixture f;
  // Delete both Post nodes (ids 4 and 5 in the Figure-1 builder order).
  std::unordered_set<NodeId> posts;
  for (const auto& n : f.graph.nodes()) {
    if (n.truth_type == "Post") posts.insert(n.id);
  }
  ASSERT_EQ(posts.size(), 2u);
  DeletionStats stats = ApplyDeletions(f.graph, posts, {}, {}, &f.schema);
  EXPECT_EQ(stats.node_types_dropped, 1u);
  EXPECT_EQ(f.schema.FindNodeTypeByLabels({"Post"}), -1);
}

TEST(DeletionsTest, EmptiedTypeKeptWhenConfigured) {
  DeletionFixture f;
  std::unordered_set<NodeId> posts;
  for (const auto& n : f.graph.nodes()) {
    if (n.truth_type == "Post") posts.insert(n.id);
  }
  DeletionOptions opt;
  opt.drop_empty_types = false;
  ApplyDeletions(f.graph, posts, {}, opt, &f.schema);
  int post = f.schema.FindNodeTypeByLabels({"Post"});
  ASSERT_GE(post, 0);
  EXPECT_TRUE(f.schema.node_types[post].instances.empty());
}

TEST(DeletionsTest, PropertyRetiredWhenNoSurvivorCarriesIt) {
  // Two nodes of one type; only one carries "extra". Deleting it retires
  // the property from the type.
  PropertyGraph g;
  g.AddNode({"T"}, {{"base", Value::Int(1)}, {"extra", Value::Int(2)}}, "T");
  g.AddNode({"T"}, {{"base", Value::Int(3)}}, "T");
  PgHivePipeline pipeline;
  SchemaGraph schema = pipeline.DiscoverSchema(g).value();
  ASSERT_EQ(schema.node_types.size(), 1u);
  ASSERT_TRUE(schema.node_types[0].property_keys.count("extra"));

  DeletionStats stats = ApplyDeletions(g, {0}, {}, {}, &schema);
  EXPECT_EQ(stats.properties_retired, 1u);
  EXPECT_FALSE(schema.node_types[0].property_keys.count("extra"));
  EXPECT_FALSE(schema.node_types[0].constraints.count("extra"));
}

TEST(DeletionsTest, ConstraintsTightenAfterDeletion) {
  // "opt" is optional because one instance lacks it; delete that instance
  // and the refresh promotes it to mandatory.
  PropertyGraph g;
  g.AddNode({"T"}, {{"opt", Value::Int(1)}}, "T");
  g.AddNode({"T"}, {{"opt", Value::Int(2)}}, "T");
  g.AddNode({"T"}, {}, "T");
  PgHivePipeline pipeline;
  SchemaGraph schema = pipeline.DiscoverSchema(g).value();
  ASSERT_EQ(schema.node_types.size(), 1u);
  EXPECT_FALSE(schema.node_types[0].constraints.at("opt").mandatory);

  ApplyDeletions(g, {2}, {}, {}, &schema);
  EXPECT_TRUE(schema.node_types[0].constraints.at("opt").mandatory);
}

TEST(DeletionsTest, SchemaStillValidatesSurvivors) {
  auto g = GenerateGraph(MakePoleSpec(),
                         GenerateOptions{.num_nodes = 400, .num_edges = 700})
               .value();
  PgHivePipeline pipeline;
  SchemaGraph schema = pipeline.DiscoverSchema(g).value();
  // Delete a third of the nodes and all their assignments.
  std::unordered_set<NodeId> dead_nodes;
  for (NodeId i = 0; i < g.num_nodes(); i += 3) dead_nodes.insert(i);
  std::unordered_set<EdgeId> dead_edges;
  for (const auto& e : g.edges()) {
    if (dead_nodes.count(e.source) || dead_nodes.count(e.target)) {
      dead_edges.insert(e.id);
    }
  }
  ApplyDeletions(g, dead_nodes, dead_edges, {}, &schema);
  // Survivors must each still be assigned exactly once.
  std::vector<int> seen(g.num_nodes(), 0);
  for (const auto& t : schema.node_types) {
    for (NodeId id : t.instances) {
      EXPECT_FALSE(dead_nodes.count(id));
      ++seen[id];
    }
  }
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(seen[i], dead_nodes.count(i) ? 0 : 1);
  }
}

// ---------- label aliases ----------

TEST(AliasTableTest, ResolveBasics) {
  AliasTable table;
  table.Add("Company", "Organization");
  table.Add("Organisation", "Organization");
  EXPECT_EQ(table.Resolve("Company").value(), "Organization");
  EXPECT_EQ(table.Resolve("Organization").value(), "Organization");
  EXPECT_EQ(table.Resolve("Unrelated").value(), "Unrelated");
}

TEST(AliasTableTest, ChainsResolve) {
  AliasTable table;
  table.Add("Firma", "Company");
  table.Add("Company", "Organization");
  EXPECT_EQ(table.Resolve("Firma").value(), "Organization");
}

TEST(AliasTableTest, CycleDetected) {
  AliasTable table;
  table.Add("A", "B");
  table.Add("B", "A");
  auto r = table.Resolve("A");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AliasTableTest, SelfAliasIgnored) {
  AliasTable table;
  table.Add("X", "X");
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Resolve("X").value(), "X");
}

TEST(AliasTableTest, FromText) {
  auto table = AliasTable::FromText(
      "# integration aliases\n"
      "Company = Organization\n"
      "\n"
      "Organisation=Organization\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 2u);
  EXPECT_EQ(table->Resolve("Company").value(), "Organization");
}

TEST(AliasTableTest, FromTextErrors) {
  EXPECT_FALSE(AliasTable::FromText("no-equals-sign\n").ok());
  EXPECT_FALSE(AliasTable::FromText("=missing\n").ok());
  EXPECT_FALSE(AliasTable::FromText("missing=\n").ok());
}

TEST(ApplyAliasesTest, LabelsRewritten) {
  GraphBuilder b;
  auto n1 = b.Node({"Company"}, {{"name", Value::String("A")}}, "Org");
  auto n2 = b.Node({"Organisation"}, {{"name", Value::String("B")}}, "Org");
  b.Edge(n1, n2, "OWNS", {});
  PropertyGraph g = std::move(b).Build();

  AliasTable table;
  table.Add("Company", "Organization");
  table.Add("Organisation", "Organization");
  auto aliased = ApplyAliases(g, table);
  ASSERT_TRUE(aliased.ok());
  EXPECT_EQ(aliased->node(0).labels, (std::set<std::string>{"Organization"}));
  EXPECT_EQ(aliased->node(1).labels, (std::set<std::string>{"Organization"}));
  // Ground truth untouched.
  EXPECT_EQ(aliased->node(0).truth_type, "Org");
}

TEST(ApplyAliasesTest, IntegrationScenarioUnifiesTypes) {
  // Two sources name the same conceptual type differently; without aliases
  // discovery yields two types, with aliases one.
  GraphBuilder b;
  for (int i = 0; i < 20; ++i) {
    b.Node({"Company"}, {{"name", Value::String("a")}}, "Org");
    b.Node({"Organisation"}, {{"name", Value::String("b")}}, "Org");
  }
  PropertyGraph g = std::move(b).Build();
  PgHivePipeline pipeline;
  auto without = pipeline.DiscoverSchema(g).value();
  EXPECT_EQ(without.node_types.size(), 2u);  // conceptual type split in two

  AliasTable table;
  table.Add("Company", "Organization");
  table.Add("Organisation", "Organization");
  auto aliased = ApplyAliases(g, table).value();
  auto with = pipeline.DiscoverSchema(aliased).value();
  EXPECT_EQ(with.node_types.size(), 1u);
  EXPECT_DOUBLE_EQ(MajorityF1Nodes(aliased, with).f1, 1.0);
}

TEST(ApplyAliasesTest, EmptyTableIsIdentity) {
  PropertyGraph g = MakeFigure1Graph();
  auto out = ApplyAliases(g, AliasTable());
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(out->node(i).labels, g.node(i).labels);
  }
}

}  // namespace
}  // namespace pghive
