// Unit tests for PG-Schema and XSD serialization (paper §4.5).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/serialization.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

SchemaGraph SampleSchema() {
  SchemaGraph s;
  SchemaNodeType person;
  person.name = "Person";
  person.labels = {"Person"};
  person.property_keys = {"name", "email"};
  person.constraints["name"] = {DataType::kString, true};
  person.constraints["email"] = {DataType::kString, false};
  s.node_types.push_back(person);

  SchemaNodeType ghost;
  ghost.name = "ABSTRACT_0";
  ghost.is_abstract = true;
  ghost.property_keys = {"blob"};
  ghost.constraints["blob"] = {DataType::kString, false};
  s.node_types.push_back(ghost);

  SchemaEdgeType knows;
  knows.name = "KNOWS";
  knows.labels = {"KNOWS"};
  knows.property_keys = {"since"};
  knows.constraints["since"] = {DataType::kDate, false};
  knows.source_labels = {"Person"};
  knows.target_labels = {"Person"};
  knows.cardinality = SchemaCardinality::kManyToMany;
  s.edge_types.push_back(knows);
  return s;
}

TEST(PgSchemaTest, StrictContainsConstraintDetail) {
  std::string out = ToPgSchema(SampleSchema(), "Sample", PgSchemaMode::kStrict);
  EXPECT_NE(out.find("CREATE GRAPH TYPE Sample STRICT {"), std::string::npos);
  EXPECT_NE(out.find("PersonType"), std::string::npos);
  EXPECT_NE(out.find("name STRING"), std::string::npos);
  EXPECT_NE(out.find("email OPTIONAL STRING"), std::string::npos);
  EXPECT_NE(out.find("since OPTIONAL DATE"), std::string::npos);
  EXPECT_NE(out.find("ABSTRACT"), std::string::npos);
  EXPECT_NE(out.find("cardinality M:N"), std::string::npos);
}

TEST(PgSchemaTest, LooseOmitsDatatypesAndOptionality) {
  std::string out = ToPgSchema(SampleSchema(), "Sample", PgSchemaMode::kLoose);
  EXPECT_NE(out.find("LOOSE {"), std::string::npos);
  EXPECT_EQ(out.find("OPTIONAL"), std::string::npos);
  EXPECT_EQ(out.find("STRING"), std::string::npos);
  EXPECT_EQ(out.find("cardinality"), std::string::npos);
  // Property keys still listed.
  EXPECT_NE(out.find("email"), std::string::npos);
}

TEST(PgSchemaTest, EdgeDeclarationShowsEndpoints) {
  std::string out = ToPgSchema(SampleSchema(), "Sample", PgSchemaMode::kStrict);
  EXPECT_NE(out.find(")-[KNOWSType: KNOWS"), std::string::npos);
  EXPECT_NE(out.find("]->("), std::string::npos);
  EXPECT_NE(out.find(": Person)"), std::string::npos);
}

TEST(PgSchemaTest, IdentifiersSanitized) {
  SchemaGraph s;
  SchemaNodeType t;
  t.name = "Weird Name&With/Chars";
  t.labels = {"Weird Name&With/Chars"};
  s.node_types.push_back(t);
  std::string out = ToPgSchema(s, "bad name!", PgSchemaMode::kStrict);
  EXPECT_NE(out.find("CREATE GRAPH TYPE bad_name_"), std::string::npos);
  EXPECT_NE(out.find("Weird_Name_With_CharsType"), std::string::npos);
}

TEST(XsdTest, DeclaresComplexTypesAndElements) {
  std::string out = ToXsd(SampleSchema());
  EXPECT_NE(out.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(out.find("<xs:schema"), std::string::npos);
  EXPECT_NE(out.find("<xs:complexType name=\"Person\""), std::string::npos);
  EXPECT_NE(out.find("type=\"xs:string\""), std::string::npos);
  // Optional property carries minOccurs=0; mandatory does not.
  EXPECT_NE(out.find("name=\"email\" type=\"xs:string\" minOccurs=\"0\""),
            std::string::npos);
  EXPECT_NE(out.find("name=\"name\" type=\"xs:string\"/>"), std::string::npos);
  EXPECT_NE(out.find("abstract=\"true\""), std::string::npos);
  EXPECT_NE(out.find("KNOWS_Edge"), std::string::npos);
  EXPECT_NE(out.find("cardinality: M:N"), std::string::npos);
  EXPECT_NE(out.find("</xs:schema>"), std::string::npos);
}

TEST(XsdTest, BalancedTags) {
  std::string out = ToXsd(SampleSchema());
  auto count = [&](const std::string& needle) {
    size_t n = 0, pos = 0;
    while ((pos = out.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("<xs:complexType"), count("</xs:complexType>"));
  EXPECT_EQ(count("<xs:sequence>"), count("</xs:sequence>"));
  EXPECT_EQ(count("<xs:annotation>"), count("</xs:annotation>"));
}

TEST(SerializationTest, DiscoveredFigure1SchemaSerializes) {
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(MakeFigure1Graph());
  ASSERT_TRUE(schema.ok());
  std::string strict = ToPgSchema(*schema, "Fig1", PgSchemaMode::kStrict);
  std::string xsd = ToXsd(*schema);
  EXPECT_NE(strict.find("Person"), std::string::npos);
  EXPECT_NE(strict.find("WORKS_AT"), std::string::npos);
  EXPECT_NE(xsd.find("Organization"), std::string::npos);
}

TEST(SerializationTest, EmptySchema) {
  SchemaGraph empty;
  EXPECT_NE(ToPgSchema(empty, "Empty", PgSchemaMode::kLoose).find("{"),
            std::string::npos);
  EXPECT_NE(ToXsd(empty).find("</xs:schema>"), std::string::npos);
}

}  // namespace
}  // namespace pghive
