// Unit tests for Algorithm 2: cluster materialization and the type
// extraction / merging phases.

#include <gtest/gtest.h>

#include "core/type_extraction.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

Cluster MakeCluster(std::set<std::string> labels,
                    std::set<std::string> props,
                    std::vector<size_t> members = {0}) {
  Cluster c;
  c.labels = std::move(labels);
  c.property_keys = std::move(props);
  c.members = std::move(members);
  return c;
}

// ---------- cluster materialization ----------

TEST(BuildClustersTest, NodeRepresentativeIsUnion) {
  PropertyGraph g = MakeFigure1Graph();
  // Group Bob (0) and Alice (2): labels {Person} ∪ {} and identical keys.
  std::vector<size_t> ids = {0, 1, 2};
  std::vector<std::vector<size_t>> groups = {{0, 2}, {1}};
  auto clusters = BuildNodeClusters(g, ids, groups);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].labels, (std::set<std::string>{"Person"}));
  EXPECT_EQ(clusters[0].property_keys,
            (std::set<std::string>{"bday", "gender", "name"}));
  EXPECT_EQ(clusters[0].members, (std::vector<size_t>{0, 2}));
}

TEST(BuildClustersTest, EdgeRepresentativeHasEndpoints) {
  PropertyGraph g = MakeFigure1Graph();
  std::vector<size_t> ids = {4};  // WORKS_AT(Bob -> Org)
  std::vector<std::vector<size_t>> groups = {{0}};
  auto clusters = BuildEdgeClusters(g, ids, groups, {});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].source_labels, (std::set<std::string>{"Person"}));
  EXPECT_EQ(clusters[0].target_labels,
            (std::set<std::string>{"Organization"}));
}

TEST(BuildClustersTest, UnlabeledEndpointUsesDiscoveredType) {
  PropertyGraph g;
  NodeId a = g.AddNode({}, {});  // unlabeled
  NodeId b = g.AddNode({"B"}, {});
  ASSERT_TRUE(g.AddEdge(a, b, {"R"}, {}).ok());
  std::unordered_map<size_t, std::set<std::string>> endpoint_labels = {
      {a, {"~ABSTRACT_0"}}};
  auto clusters = BuildEdgeClusters(g, {0}, {{0}}, endpoint_labels);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].source_labels,
            (std::set<std::string>{"~ABSTRACT_0"}));
  EXPECT_EQ(clusters[0].target_labels, (std::set<std::string>{"B"}));
}

// ---------- Algorithm 2: node types ----------

TEST(ExtractNodeTypesTest, SameLabelSetsMerge) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeCluster({"Post"}, {"imgFile"}, {0}),
      MakeCluster({"Post"}, {"content"}, {1}),
  };
  ExtractNodeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 1u);
  EXPECT_EQ(schema.node_types[0].property_keys,
            (std::set<std::string>{"content", "imgFile"}));
  EXPECT_EQ(schema.node_types[0].instances.size(), 2u);
  EXPECT_EQ(schema.node_types[0].name, "Post");
}

TEST(ExtractNodeTypesTest, DifferentLabelSetsStaySeparate) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeCluster({"Person"}, {"name"}, {0}),
      MakeCluster({"Person", "Student"}, {"name"}, {1}),
  };
  ExtractNodeTypes(clusters, {}, &schema);
  EXPECT_EQ(schema.node_types.size(), 2u);
}

TEST(ExtractNodeTypesTest, UnlabeledMergesIntoSimilarLabeledType) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeCluster({"Person"}, {"name", "gender", "bday"}, {0, 1}),
      MakeCluster({}, {"name", "gender", "bday"}, {2}),  // Alice
  };
  ExtractNodeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 1u);
  EXPECT_EQ(schema.node_types[0].instances.size(), 3u);
  EXPECT_FALSE(schema.node_types[0].is_abstract);
}

TEST(ExtractNodeTypesTest, DissimilarUnlabeledBecomesAbstract) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeCluster({"Person"}, {"name", "gender", "bday"}, {0}),
      MakeCluster({}, {"totally", "different"}, {1}),
  };
  ExtractNodeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 2u);
  EXPECT_TRUE(schema.node_types[1].is_abstract);
  EXPECT_EQ(schema.node_types[1].name, "ABSTRACT_0");
}

TEST(ExtractNodeTypesTest, ThetaControlsUnlabeledMerging) {
  // Jaccard of {a,b,c} vs {a,b,c,d} is 0.75.
  auto run = [](double theta) {
    SchemaGraph schema;
    std::vector<Cluster> clusters = {
        MakeCluster({"T"}, {"a", "b", "c", "d"}, {0}),
        MakeCluster({}, {"a", "b", "c"}, {1}),
    };
    TypeExtractionOptions opt;
    opt.jaccard_threshold = theta;
    ExtractNodeTypes(clusters, opt, &schema);
    return schema.node_types.size();
  };
  EXPECT_EQ(run(0.9), 2u);  // too strict -> abstract type
  EXPECT_EQ(run(0.7), 1u);  // permissive -> merged
}

TEST(ExtractNodeTypesTest, UnlabeledPairwiseMerging) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeCluster({}, {"x", "y"}, {0}),
      MakeCluster({}, {"x", "y"}, {1}),
      MakeCluster({}, {"p", "q"}, {2}),
  };
  ExtractNodeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 2u);
  EXPECT_TRUE(schema.node_types[0].is_abstract);
  EXPECT_TRUE(schema.node_types[1].is_abstract);
  // The two identical clusters merged.
  size_t total = schema.node_types[0].instances.size() +
                 schema.node_types[1].instances.size();
  EXPECT_EQ(total, 3u);
}

TEST(ExtractNodeTypesTest, UnlabeledExtendsExistingAbstractType) {
  SchemaGraph schema;
  ExtractNodeTypes({MakeCluster({}, {"x", "y"}, {0})}, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 1u);
  // Next batch: a structurally identical unlabeled cluster.
  ExtractNodeTypes({MakeCluster({}, {"x", "y"}, {1})}, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 1u);
  EXPECT_EQ(schema.node_types[0].instances.size(), 2u);
}

TEST(ExtractNodeTypesTest, AbstractNamesStayUniqueAcrossBatches) {
  SchemaGraph schema;
  ExtractNodeTypes({MakeCluster({}, {"a1"}, {0})}, {}, &schema);
  ExtractNodeTypes({MakeCluster({}, {"b1", "b2"}, {1})}, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 2u);
  EXPECT_NE(schema.node_types[0].name, schema.node_types[1].name);
}

TEST(ExtractNodeTypesTest, AbstractNamesUniqueAfterTypeRetirement) {
  // If ABSTRACT_0 is retired (e.g. by deletions) while ABSTRACT_1 survives,
  // the next fresh abstract type must not reuse "ABSTRACT_1".
  SchemaGraph schema;
  ExtractNodeTypes({MakeCluster({}, {"a1"}, {0})}, {}, &schema);   // ABSTRACT_0
  ExtractNodeTypes({MakeCluster({}, {"b1", "b2"}, {1})}, {}, &schema);  // _1
  ASSERT_EQ(schema.node_types.size(), 2u);
  schema.node_types.erase(schema.node_types.begin());  // retire ABSTRACT_0
  ExtractNodeTypes({MakeCluster({}, {"c1", "c2", "c3"}, {2})}, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 2u);
  EXPECT_NE(schema.node_types[0].name, schema.node_types[1].name);
  EXPECT_EQ(schema.node_types[1].name, "ABSTRACT_2");
}

// ---------- Algorithm 2: edge types ----------

Cluster MakeEdgeCluster(std::set<std::string> labels,
                        std::set<std::string> props,
                        std::set<std::string> src, std::set<std::string> tgt,
                        std::vector<size_t> members = {0}) {
  Cluster c = MakeCluster(std::move(labels), std::move(props),
                          std::move(members));
  c.source_labels = std::move(src);
  c.target_labels = std::move(tgt);
  return c;
}

TEST(ExtractEdgeTypesTest, SameLabelSameEndpointsMerge) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeEdgeCluster({"KNOWS"}, {"since"}, {"Person"}, {"Person"}, {0}),
      MakeEdgeCluster({"KNOWS"}, {}, {"Person"}, {"Person"}, {1}),
  };
  ExtractEdgeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.edge_types.size(), 1u);
  EXPECT_EQ(schema.edge_types[0].property_keys,
            (std::set<std::string>{"since"}));
}

TEST(ExtractEdgeTypesTest, SameLabelDifferentEndpointsStaySeparate) {
  // HAS_POSTCODE from Location vs from Area (POLE).
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeEdgeCluster({"HAS_POSTCODE"}, {}, {"Location"}, {"PostCode"}, {0}),
      MakeEdgeCluster({"HAS_POSTCODE"}, {}, {"Area"}, {"PostCode"}, {1}),
  };
  ExtractEdgeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.edge_types.size(), 2u);
  EXPECT_NE(schema.edge_types[0].name, schema.edge_types[1].name);
}

TEST(ExtractEdgeTypesTest, NestedEndpointSetsAreCompatible) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeEdgeCluster({"R"}, {}, {"Person"}, {"Org"}, {0}),
      MakeEdgeCluster({"R"}, {}, {"Person", "~ABSTRACT_0"}, {"Org"}, {1}),
  };
  ExtractEdgeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.edge_types.size(), 1u);
  EXPECT_EQ(schema.edge_types[0].source_labels,
            (std::set<std::string>{"Person", "~ABSTRACT_0"}));
}

TEST(ExtractEdgeTypesTest, OverlappingButUnnestedEndpointsSeparate) {
  // LDBC LIKES: {Message, Post} vs {Comment, Message} share Message only.
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeEdgeCluster({"LIKES"}, {}, {"Person"}, {"Message", "Post"}, {0}),
      MakeEdgeCluster({"LIKES"}, {}, {"Person"}, {"Comment", "Message"}, {1}),
  };
  ExtractEdgeTypes(clusters, {}, &schema);
  EXPECT_EQ(schema.edge_types.size(), 2u);
}

TEST(ExtractEdgeTypesTest, UnlabeledEdgeMergingUsesEndpoints) {
  // Two property-less unlabeled edge clusters with different endpoints must
  // NOT merge (J(∅,∅) = 1 would otherwise conflate them).
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeEdgeCluster({}, {}, {"A"}, {"B"}, {0}),
      MakeEdgeCluster({}, {}, {"C"}, {"D"}, {1}),
  };
  ExtractEdgeTypes(clusters, {}, &schema);
  EXPECT_EQ(schema.edge_types.size(), 2u);
}

TEST(ExtractEdgeTypesTest, UnlabeledEdgeMergesIntoMatchingLabeledType) {
  SchemaGraph schema;
  std::vector<Cluster> clusters = {
      MakeEdgeCluster({"WORKS_AT"}, {"from"}, {"Person"}, {"Org"}, {0}),
      MakeEdgeCluster({}, {"from"}, {"Person"}, {"Org"}, {1}),
  };
  ExtractEdgeTypes(clusters, {}, &schema);
  ASSERT_EQ(schema.edge_types.size(), 1u);
  EXPECT_EQ(schema.edge_types[0].instances.size(), 2u);
}

// ---------- Lemmas 1-2: merge monotonicity ----------

TEST(MergeMonotonicityTest, NodeMergePreservesLabelsAndProperties) {
  SchemaGraph schema;
  ExtractNodeTypes({MakeCluster({"T"}, {"a", "b"}, {0})}, {}, &schema);
  auto before_labels = schema.node_types[0].labels;
  auto before_props = schema.node_types[0].property_keys;
  ExtractNodeTypes({MakeCluster({"T"}, {"c"}, {1})}, {}, &schema);
  ASSERT_EQ(schema.node_types.size(), 1u);
  const auto& after = schema.node_types[0];
  for (const auto& l : before_labels) EXPECT_TRUE(after.labels.count(l));
  for (const auto& p : before_props) EXPECT_TRUE(after.property_keys.count(p));
  EXPECT_TRUE(after.property_keys.count("c"));
}

TEST(MergeMonotonicityTest, EdgeMergePreservesEndpoints) {
  SchemaGraph schema;
  ExtractEdgeTypes({MakeEdgeCluster({"R"}, {"p"}, {"S1"}, {"T1"}, {0})}, {},
                   &schema);
  ExtractEdgeTypes({MakeEdgeCluster({"R"}, {"q"}, {"S1"}, {"T1"}, {1})}, {},
                   &schema);
  ASSERT_EQ(schema.edge_types.size(), 1u);
  const auto& t = schema.edge_types[0];
  EXPECT_TRUE(t.property_keys.count("p"));
  EXPECT_TRUE(t.property_keys.count("q"));
  EXPECT_TRUE(t.source_labels.count("S1"));
  EXPECT_TRUE(t.target_labels.count("T1"));
}

}  // namespace
}  // namespace pghive
