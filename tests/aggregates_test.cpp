// Unit tests for the delta-maintained post-processing aggregates
// (core/aggregates.h): fold/build/merge equivalence with the rescan passes,
// watermark semantics, consistency detection and the numeric partials.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/aggregates.h"
#include "core/cardinality.h"
#include "core/constraints.h"
#include "core/datatype_inference.h"
#include "core/pipeline.h"
#include "core/value_stats.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"

namespace pghive {
namespace {

// A mixed-type graph: two node types with overlapping/partial keys, two
// edge types with fan-out/fan-in, plus datatype-join cases (int+double,
// date+timestamp, bool+string).
struct Fixture {
  PropertyGraph graph;
  SchemaGraph schema;

  NodeId AddNode(const std::string& type,
                 std::map<std::string, Value> props) {
    SchemaNodeType* t = nullptr;
    for (auto& nt : schema.node_types) {
      if (nt.name == type) t = &nt;
    }
    if (t == nullptr) {
      SchemaNodeType nt;
      nt.name = type;
      nt.labels = {type};
      schema.node_types.push_back(std::move(nt));
      t = &schema.node_types.back();
    }
    for (const auto& [k, v] : props) t->property_keys.insert(k);
    NodeId id = graph.AddNode({type}, std::move(props));
    t->instances.push_back(id);
    return id;
  }

  void AddEdge(const std::string& type, NodeId src, NodeId dst,
               std::map<std::string, Value> props) {
    SchemaEdgeType* t = nullptr;
    for (auto& et : schema.edge_types) {
      if (et.name == type) t = &et;
    }
    if (t == nullptr) {
      SchemaEdgeType et;
      et.name = type;
      et.labels = {type};
      schema.edge_types.push_back(std::move(et));
      t = &schema.edge_types.back();
    }
    for (const auto& [k, v] : props) t->property_keys.insert(k);
    EdgeId id = graph.AddEdge(src, dst, {type}, std::move(props)).value();
    t->instances.push_back(id);
  }
};

Fixture MakeFixture() {
  Fixture f;
  NodeId p0 = f.AddNode("Person", {{"name", Value::String("ann")},
                                   {"age", Value::Int(30)}});
  NodeId p1 = f.AddNode("Person", {{"name", Value::String("bob")},
                                   {"age", Value::Double(41.5)}});
  NodeId p2 = f.AddNode("Person", {{"name", Value::String("cyd")}});
  NodeId o0 = f.AddNode("Org", {{"founded", Value::Date("2001-04-01")},
                                {"active", Value::Bool(true)}});
  NodeId o1 =
      f.AddNode("Org", {{"founded", Value::Timestamp("2010-05-02T10:00:00")},
                        {"active", Value::String("yes")}});
  f.AddEdge("WORKS_AT", p0, o0, {{"since", Value::Int(2019)}});
  f.AddEdge("WORKS_AT", p1, o0, {});
  f.AddEdge("WORKS_AT", p2, o1, {{"since", Value::Int(2021)}});
  f.AddEdge("KNOWS", p0, p1, {});
  f.AddEdge("KNOWS", p0, p2, {});
  return f;
}

SchemaGraph RescanPostProcess(const Fixture& f) {
  SchemaGraph s = f.schema;
  InferPropertyConstraints(f.graph, &s);
  InferDataTypes(f.graph, {}, &s);
  ComputeCardinalities(f.graph, &s);
  return s;
}

SchemaGraph FinalizeFrom(const Fixture& f, const SchemaAggregates& agg,
                         ThreadPool* pool = nullptr) {
  SchemaGraph s = f.schema;
  FinalizeConstraints(f.graph.symbols(), agg, &s, pool);
  FinalizeDataTypes(f.graph.symbols(), agg, &s, pool);
  FinalizeCardinalities(agg, &s, pool);
  return s;
}

std::string SchemaText(const SchemaGraph& s) {
  std::string out;
  auto constraint_text = [&](const auto& t) {
    out += t.name + "{";
    for (const auto& [key, c] : t.constraints) {
      out += key + ":" + std::to_string(static_cast<int>(c.type)) +
             (c.mandatory ? "!" : "?") + " ";
    }
    out += "}";
  };
  for (const auto& t : s.node_types) constraint_text(t);
  for (const auto& t : s.edge_types) {
    constraint_text(t);
    out += "[" + std::to_string(t.max_out_degree) + "," +
           std::to_string(t.max_in_degree) + "," +
           std::to_string(static_cast<int>(t.cardinality)) + "]";
  }
  return out;
}

TEST(AggregatesTest, FinalizationMatchesRescanPasses) {
  Fixture f = MakeFixture();
  SchemaAggregates agg = BuildAggregates(f.graph, f.schema);
  ASSERT_TRUE(agg.ConsistentWith(f.schema));
  EXPECT_EQ(SchemaText(FinalizeFrom(f, agg)), SchemaText(RescanPostProcess(f)));
}

TEST(AggregatesTest, DatatypeJoinsMatchSequentialFold) {
  Fixture f = MakeFixture();
  SchemaGraph s = FinalizeFrom(f, BuildAggregates(f.graph, f.schema));
  const auto& person = s.node_types[0].constraints;
  EXPECT_EQ(person.at("age").type, DataType::kDouble);    // Int ⊔ Double
  EXPECT_EQ(person.at("name").type, DataType::kString);
  const auto& org = s.node_types[1].constraints;
  EXPECT_EQ(org.at("founded").type, DataType::kTimestamp);  // Date ⊔ Ts
  EXPECT_EQ(org.at("active").type, DataType::kString);      // Bool ⊔ String
  const auto& works = s.edge_types[0];
  EXPECT_EQ(works.constraints.at("since").type, DataType::kInt);
  EXPECT_FALSE(works.constraints.at("since").mandatory);  // 2 of 3
  EXPECT_EQ(works.max_in_degree, 2u);  // o0 has two employees
  EXPECT_EQ(works.max_out_degree, 1u);
  EXPECT_EQ(works.cardinality, SchemaCardinality::kManyToOne);
  const auto& knows = s.edge_types[1];
  EXPECT_EQ(knows.max_out_degree, 2u);  // p0 knows two people
  EXPECT_EQ(knows.cardinality, SchemaCardinality::kOneToMany);
}

TEST(AggregatesTest, ParallelBuildMatchesSequential) {
  Fixture f = MakeFixture();
  const SchemaAggregates seq = BuildAggregates(f.graph, f.schema);
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(BuildAggregates(f.graph, f.schema, &pool), seq);
  }
}

TEST(AggregatesTest, IncrementalFoldEqualsOneShotBuild) {
  // Replay the fixture's construction in two stages: aggregates folded
  // after each stage must equal the one-shot build over the final state.
  Fixture staged;
  NodeId p0 = staged.AddNode("Person", {{"name", Value::String("ann")},
                                        {"age", Value::Int(30)}});
  NodeId p1 = staged.AddNode("Person", {{"name", Value::String("bob")},
                                        {"age", Value::Double(41.5)}});
  SchemaAggregates agg;
  EXPECT_TRUE(agg.FoldNew(staged.graph, staged.schema));
  EXPECT_EQ(agg.FoldedInstances(), 2u);

  NodeId p2 = staged.AddNode("Person", {{"name", Value::String("cyd")}});
  NodeId o0 = staged.AddNode("Org", {{"founded", Value::Date("2001-04-01")},
                                     {"active", Value::Bool(true)}});
  NodeId o1 = staged.AddNode(
      "Org", {{"founded", Value::Timestamp("2010-05-02T10:00:00")},
              {"active", Value::String("yes")}});
  staged.AddEdge("WORKS_AT", p0, o0, {{"since", Value::Int(2019)}});
  staged.AddEdge("WORKS_AT", p1, o0, {});
  staged.AddEdge("WORKS_AT", p2, o1, {{"since", Value::Int(2021)}});
  staged.AddEdge("KNOWS", p0, p1, {});
  staged.AddEdge("KNOWS", p0, p2, {});
  EXPECT_TRUE(agg.FoldNew(staged.graph, staged.schema));
  EXPECT_TRUE(agg.ConsistentWith(staged.schema));
  EXPECT_EQ(agg, BuildAggregates(staged.graph, staged.schema));
}

TEST(AggregatesTest, MergeEqualsCombinedFold) {
  Fixture f = MakeFixture();
  // Split each type's instance list into halves, fold each half into its
  // own aggregate via a truncated schema view, then merge.
  SchemaGraph first = f.schema, second = f.schema;
  auto halve = [](auto* types) {
    for (auto& t : *types) t.instances.resize(t.instances.size() / 2);
  };
  halve(&first.node_types);
  halve(&first.edge_types);
  SchemaAggregates a, b;
  EXPECT_TRUE(a.FoldNew(f.graph, first));
  // b starts at first's watermarks and folds the remainder.
  b = a;
  EXPECT_TRUE(b.FoldNew(f.graph, second));
  EXPECT_EQ(b, BuildAggregates(f.graph, f.schema));

  // Index-wise Merge of two independently folded halves also matches: the
  // second half folded standalone (fresh aggregate over a schema whose
  // instance lists are ONLY the second halves).
  SchemaGraph tail = f.schema;
  auto keep_tail = [](auto* types, const auto& full_types) {
    for (size_t i = 0; i < types->size(); ++i) {
      const auto& all = full_types[i].instances;
      (*types)[i].instances.assign(all.begin() + all.size() / 2, all.end());
    }
  };
  keep_tail(&tail.node_types, f.schema.node_types);
  keep_tail(&tail.edge_types, f.schema.edge_types);
  SchemaAggregates c;
  EXPECT_TRUE(c.FoldNew(f.graph, tail));
  SchemaAggregates merged = a;
  merged.Merge(c);
  EXPECT_EQ(merged, BuildAggregates(f.graph, f.schema));
}

TEST(AggregatesTest, ShrunkInstanceListDetected) {
  Fixture f = MakeFixture();
  SchemaAggregates agg;
  EXPECT_TRUE(agg.FoldNew(f.graph, f.schema));
  SchemaGraph shrunk = f.schema;
  shrunk.node_types[0].instances.pop_back();
  EXPECT_FALSE(agg.ConsistentWith(shrunk));
  EXPECT_FALSE(agg.FoldNew(f.graph, shrunk));
}

TEST(AggregatesTest, PipelineFallsBackOnStaleAggregates) {
  Fixture f = MakeFixture();
  SchemaAggregates stale = BuildAggregates(f.graph, f.schema);
  // External surgery: drop one Person instance. The pipeline must ignore
  // the stale aggregates and still match a rescan of the mutated schema.
  Fixture mutated = f;
  mutated.schema.node_types[0].instances.pop_back();
  PgHivePipeline pipeline{PipelineOptions{}};
  SchemaGraph via_pipeline = mutated.schema;
  pipeline.PostProcessWithAggregates(mutated.graph, &stale, &via_pipeline);
  EXPECT_EQ(SchemaText(via_pipeline), SchemaText(RescanPostProcess(mutated)));
}

TEST(AggregatesTest, NumericPartialsMatchValueStats) {
  Fixture f = MakeFixture();
  SchemaAggregates agg = BuildAggregates(f.graph, f.schema);
  SchemaValueStats stats = ComputeValueStats(f.graph, f.schema, {});
  const GraphSymbols& sym = f.graph.symbols();
  for (size_t i = 0; i < f.schema.node_types.size(); ++i) {
    for (const auto& [key, ps] : stats.node_types[i]) {
      SCOPED_TRACE(f.schema.node_types[i].name + "." + key);
      const SymbolId* sid = sym.keys.Find(key);
      ASSERT_NE(sid, nullptr);
      auto it = agg.node_types[i].keys.find(*sid);
      if (it == agg.node_types[i].keys.end()) {
        EXPECT_EQ(ps.observed, 0u);
        continue;
      }
      EXPECT_EQ(it->second.present, ps.observed);
      EXPECT_EQ(it->second.numeric_count, ps.numeric_count);
      if (ps.numeric_count > 0) {
        EXPECT_DOUBLE_EQ(it->second.numeric_min, ps.numeric_min);
        EXPECT_DOUBLE_EQ(it->second.numeric_max, ps.numeric_max);
      }
    }
  }
}

// End-to-end on a real dataset: the full pipeline with aggregates on/off
// produces identical schemas, one-shot and with the gauges published.
TEST(AggregatesTest, DiscoveryIdenticalWithAndWithoutAggregates) {
  GenerateOptions gen;
  gen.num_nodes = 500;
  gen.num_edges = 900;
  PropertyGraph g = GenerateGraph(MakePoleSpec(), gen).value();
  PipelineOptions on, off;
  off.aggregate_post_process = false;
  auto with = PgHivePipeline(on).DiscoverSchema(g);
  auto without = PgHivePipeline(off).DiscoverSchema(g);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(SchemaText(*with), SchemaText(*without));
  PublishAggregateGauges(BuildAggregates(g, *with));
}

// Sampling mode cannot be served from tallies; the pipeline must fall back
// to the rescan and stay identical to the aggregate-off path.
TEST(AggregatesTest, SamplingModeFallsBackToRescan) {
  GenerateOptions gen;
  gen.num_nodes = 400;
  gen.num_edges = 700;
  PropertyGraph g = GenerateGraph(MakePoleSpec(), gen).value();
  PipelineOptions on, off;
  on.datatypes.sample = true;
  off.datatypes.sample = true;
  off.aggregate_post_process = false;
  auto with = PgHivePipeline(on).DiscoverSchema(g);
  auto without = PgHivePipeline(off).DiscoverSchema(g);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(SchemaText(*with), SchemaText(*without));
}

}  // namespace
}  // namespace pghive
