// Unit tests for the schema model (schema.h) and patterns (pattern.h).

#include <gtest/gtest.h>

#include "core/pattern.h"
#include "core/schema.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

SchemaGraph TwoTypeSchema() {
  SchemaGraph s;
  SchemaNodeType person;
  person.name = "Person";
  person.labels = {"Person"};
  person.property_keys = {"name", "age"};
  s.node_types.push_back(person);
  SchemaNodeType org;
  org.name = "Org";
  org.labels = {"Org"};
  org.property_keys = {"name", "url"};
  s.node_types.push_back(org);
  SchemaEdgeType works;
  works.name = "WORKS_AT";
  works.labels = {"WORKS_AT"};
  works.source_labels = {"Person"};
  works.target_labels = {"Org"};
  works.property_keys = {"from"};
  s.edge_types.push_back(works);
  return s;
}

TEST(SchemaGraphTest, FindByLabels) {
  SchemaGraph s = TwoTypeSchema();
  EXPECT_EQ(s.FindNodeTypeByLabels({"Person"}), 0);
  EXPECT_EQ(s.FindNodeTypeByLabels({"Org"}), 1);
  EXPECT_EQ(s.FindNodeTypeByLabels({"Nope"}), -1);
  EXPECT_EQ(s.FindEdgeTypeByLabels({"WORKS_AT"}), 0);
  EXPECT_EQ(s.FindEdgeTypeByLabels({}), -1);
  EXPECT_EQ(s.num_types(), 3u);
}

TEST(SchemaCoversTest, SchemaCoversItself) {
  SchemaGraph s = TwoTypeSchema();
  EXPECT_TRUE(SchemaCovers(s, s));
}

TEST(SchemaCoversTest, SupersetCoversSubset) {
  SchemaGraph sub = TwoTypeSchema();
  SchemaGraph super = TwoTypeSchema();
  super.node_types[0].property_keys.insert("email");  // widened type
  EXPECT_TRUE(SchemaCovers(super, sub));
  EXPECT_FALSE(SchemaCovers(sub, super));
}

TEST(SchemaCoversTest, MissingTypeBreaksCoverage) {
  SchemaGraph sub = TwoTypeSchema();
  SchemaGraph super = TwoTypeSchema();
  super.node_types.pop_back();
  EXPECT_FALSE(SchemaCovers(super, sub));
}

TEST(SchemaCoversTest, EdgeEndpointsChecked) {
  SchemaGraph sub = TwoTypeSchema();
  SchemaGraph super = TwoTypeSchema();
  super.edge_types[0].target_labels = {"Place"};
  EXPECT_FALSE(SchemaCovers(super, sub));
}

TEST(SchemaCoversTest, EmptySchemaCoveredByAnything) {
  SchemaGraph empty;
  EXPECT_TRUE(SchemaCovers(TwoTypeSchema(), empty));
  EXPECT_TRUE(SchemaCovers(empty, empty));
}

TEST(SchemaSummaryTest, CountsAbstractTypes) {
  SchemaGraph s = TwoTypeSchema();
  s.node_types[1].is_abstract = true;
  std::string summary = SchemaSummary(s);
  EXPECT_NE(summary.find("2 node types"), std::string::npos);
  EXPECT_NE(summary.find("1 abstract"), std::string::npos);
  EXPECT_NE(summary.find("1 edge types"), std::string::npos);
}

TEST(SchemaCardinalityTest, Names) {
  EXPECT_STREQ(SchemaCardinalityName(SchemaCardinality::kZeroOrOne), "0:1");
  EXPECT_STREQ(SchemaCardinalityName(SchemaCardinality::kManyToOne), "N:1");
  EXPECT_STREQ(SchemaCardinalityName(SchemaCardinality::kOneToMany), "0:N");
  EXPECT_STREQ(SchemaCardinalityName(SchemaCardinality::kManyToMany), "M:N");
  EXPECT_STREQ(SchemaCardinalityName(SchemaCardinality::kUnknown), "?");
}

// ---------- patterns ----------

TEST(PatternTest, NodePatternOfInstance) {
  PropertyGraph g = MakeFigure1Graph();
  NodePattern p = PatternOf(g.node(0));  // Bob
  EXPECT_EQ(p.labels, (std::set<std::string>{"Person"}));
  EXPECT_EQ(p.property_keys,
            (std::set<std::string>{"bday", "gender", "name"}));
}

TEST(PatternTest, EdgePatternIncludesEndpoints) {
  PropertyGraph g = MakeFigure1Graph();
  // Edge 4 is WORKS_AT(Bob -> Organization) with property {from}.
  EdgePattern p = PatternOf(g, g.edge(4));
  EXPECT_EQ(p.labels, (std::set<std::string>{"WORKS_AT"}));
  EXPECT_EQ(p.property_keys, (std::set<std::string>{"from"}));
  EXPECT_EQ(p.source_labels, (std::set<std::string>{"Person"}));
  EXPECT_EQ(p.target_labels, (std::set<std::string>{"Organization"}));
}

TEST(PatternTest, DistinctPatternsMatchExampleTwo) {
  PropertyGraph g = MakeFigure1Graph();
  EXPECT_EQ(DistinctNodePatterns(g).size(), 6u);
  EXPECT_EQ(DistinctEdgePatterns(g).size(), 6u);
}

TEST(PatternTest, PatternOrderingIsStrictWeak) {
  NodePattern a{{"A"}, {"x"}};
  NodePattern b{{"A"}, {"y"}};
  NodePattern c{{"B"}, {"x"}};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace pghive
