// The drift subsystem's bit-identity invariant: discovering a mutation
// stream (inserts + deletes + updates, applied through the engine's
// retraction path) yields the SAME final post-processed schema — byte for
// byte, as schema JSON — as one-shot incremental discovery of the stream's
// net surviving elements (drift::NetSurvivingStream, same batch
// boundaries). Exercised for every evolution scenario under both LSH
// clustering backends, both thread counts and three feed-shard layouts
// (the signature-sharded retraction/fold path of core/shard_plan.h), plus
// durable-store variants with a mid-stream crash + recovery.

#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/schema_json.h"
#include "datagen/evolution.h"
#include "drift/replay.h"
#include "graph/mutations.h"
#include "graph/property_graph.h"
#include "store/state_store.h"
#include "text/label_embedder.h"

namespace pghive {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/pghive_drift_eq_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Mutation-stream side: every batch through the Feed/FeedMutations
/// dispatch the durable store uses.
SchemaGraph DiscoverMutationStream(const std::vector<MutationBatch>& stream,
                                   const IncrementalOptions& opt) {
  PropertyGraph g;
  IncrementalDiscoverer engine(opt);
  for (const MutationBatch& mb : stream) {
    auto applied = drift::ApplyMutationBatch(&g, mb);
    EXPECT_TRUE(applied.ok()) << applied.status();
    if (!applied.ok()) break;
    Status s;
    if (applied->deleted_nodes.empty() && applied->deleted_edges.empty()) {
      if (applied->batch.num_nodes() == 0 && applied->batch.num_edges() == 0) {
        continue;
      }
      s = engine.Feed(applied->batch);
    } else {
      s = engine.FeedMutations(applied->batch, applied->deleted_nodes,
                               applied->deleted_edges);
    }
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) break;
  }
  return engine.Finish(g);
}

/// Ground-truth side: the net surviving elements replayed insert-only with
/// the same batch boundaries.
SchemaGraph DiscoverSurvivors(const std::vector<MutationBatch>& stream,
                              const IncrementalOptions& opt) {
  auto net = drift::NetSurvivingStream(stream);
  EXPECT_TRUE(net.ok()) << net.status();
  PropertyGraph g;
  IncrementalDiscoverer engine(opt);
  for (const MutationBatch& mb : *net) {
    auto applied = drift::ApplyMutationBatch(&g, mb);
    EXPECT_TRUE(applied.ok()) << applied.status();
    if (!applied.ok()) break;
    if (applied->batch.num_nodes() == 0 && applied->batch.num_edges() == 0) {
      continue;  // a batch whose elements all died: boundary only
    }
    Status s = engine.Feed(applied->batch);
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) break;
  }
  return engine.Finish(g);
}

using EquivalenceParam =
    std::tuple<std::string, ClusteringMethod, int /*threads*/,
               int /*feed_shards*/>;

class DriftEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(DriftEquivalenceTest, StreamSchemaMatchesSurvivorSchema) {
  const auto& [scenario_name, method, threads, shards] = GetParam();
  auto scenario = MakeEvolutionScenario(scenario_name);
  ASSERT_TRUE(scenario.ok()) << scenario.status();

  IncrementalOptions opt;
  opt.pipeline.embedding.backend = EmbeddingBackend::kHash;
  opt.pipeline.method = method;
  opt.pipeline.num_threads = threads;
  opt.pipeline.feed_shards = shards;

  const SchemaGraph streamed = DiscoverMutationStream(scenario->stream, opt);
  const SchemaGraph survivors = DiscoverSurvivors(scenario->stream, opt);
  EXPECT_EQ(SchemaToJson(streamed), SchemaToJson(survivors));
  EXPECT_FALSE(streamed.node_types.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, DriftEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(EvolutionScenarioNames()),
                       ::testing::Values(ClusteringMethod::kElsh,
                                         ClusteringMethod::kMinHash),
                       ::testing::Values(1, 8),
                       ::testing::Values(1, 4, 16)),
    [](const ::testing::TestParamInfo<EquivalenceParam>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) == ClusteringMethod::kElsh ? "_elsh"
                                                                 : "_minhash";
      name += "_t" + std::to_string(std::get<2>(info.param));
      name += "_s" + std::to_string(std::get<3>(info.param));
      return name;
    });

// The invariant also holds under the default (Word2Vec) embedding: the
// batch corpora differ between the two sides (stream-side batches still
// contain the elements they later retract), so this pins that the scenario
// shape rules — separated label sets, per-type key vocabularies — make
// clustering resolve identically anyway.
TEST(DriftEquivalenceWord2VecTest, LabelChurnMatchesUnderDefaultEmbedding) {
  auto scenario = MakeEvolutionScenario("label-churn");
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  IncrementalOptions opt;  // default embedding backend
  const SchemaGraph streamed = DiscoverMutationStream(scenario->stream, opt);
  const SchemaGraph survivors = DiscoverSurvivors(scenario->stream, opt);
  EXPECT_EQ(SchemaToJson(streamed), SchemaToJson(survivors));
}

// --- Durable-store variants: the same invariant through journal + ---
// --- snapshot + recovery.                                          ---

store::StoreOptions FastStoreOptions() {
  store::StoreOptions opt;
  opt.incremental.pipeline.embedding.backend = EmbeddingBackend::kHash;
  opt.fsync = false;
  opt.checkpoint_every_batches = 2;
  return opt;
}

std::string DurableFinish(store::DurableDiscoverer* store) {
  auto finished = store->Finish();
  EXPECT_TRUE(finished.ok()) << finished.status();
  return finished.ok() ? SchemaToJson(*finished) : std::string();
}

TEST(DriftDurableEquivalenceTest, RecoveredMidStreamRunMatchesUninterrupted) {
  // feed_shards=16 routes journal replay through the sharded retraction/fold
  // path — crash recovery must land on the same bytes as the unsharded run.
  for (int shards : {1, 16}) {
    store::StoreOptions store_opt = FastStoreOptions();
    store_opt.incremental.pipeline.feed_shards = shards;
    const std::string tag = "_s" + std::to_string(shards);
    for (const EvolutionScenario& scenario : AllEvolutionScenarios()) {
      SCOPED_TRACE(scenario.name + tag);
      const std::vector<MutationBatch>& stream = scenario.stream;
      const size_t cut = stream.size() / 2;
      ASSERT_GT(cut, 0u);

      // Uninterrupted durable run.
      const std::string base_dir = TestDir(scenario.name + tag + "_base");
      std::string uninterrupted;
      {
        auto store =
            store::DurableDiscoverer::OpenOrRecover(base_dir, store_opt);
        ASSERT_TRUE(store.ok()) << store.status();
        for (const MutationBatch& mb : stream) {
          ASSERT_TRUE((*store)->Feed(mb).ok());
        }
        uninterrupted = DurableFinish(store->get());
      }

      // Crash after the cut: the batch at `cut` is journaled but NOT applied
      // (the exact crash window between append and apply), then the process
      // dies and a fresh open replays it.
      const std::string crash_dir = TestDir(scenario.name + tag + "_crash");
      {
        auto store =
            store::DurableDiscoverer::OpenOrRecover(crash_dir, store_opt);
        ASSERT_TRUE(store.ok()) << store.status();
        for (size_t i = 0; i < cut; ++i) {
          ASSERT_TRUE((*store)->Feed(stream[i]).ok());
        }
        ASSERT_TRUE((*store)->FeedJournalOnly(stream[cut]).ok());
        // Dropped without a checkpoint: recovery must replay from the
        // journal.
      }
      std::string recovered;
      {
        store::RecoveryReport report;
        auto store = store::DurableDiscoverer::OpenOrRecover(
            crash_dir, store_opt, &report);
        ASSERT_TRUE(store.ok()) << store.status();
        EXPECT_EQ((*store)->batches_applied(), cut + 1);
        EXPECT_GE(report.replayed_batches, 1u);
        for (size_t i = cut + 1; i < stream.size(); ++i) {
          ASSERT_TRUE((*store)->Feed(stream[i]).ok());
        }
        recovered = DurableFinish(store->get());
      }
      EXPECT_EQ(recovered, uninterrupted);

      // And both equal the engine-level survivors replay (always computed
      // unsharded — the shard layout must not leak into the output).
      store::StoreOptions opt = FastStoreOptions();
      const SchemaGraph survivors = DiscoverSurvivors(stream, opt.incremental);
      EXPECT_EQ(uninterrupted, SchemaToJson(survivors));
    }
  }
}

}  // namespace
}  // namespace pghive
