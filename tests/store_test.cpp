// Durable state store (src/store/): binary io, codecs, snapshot format,
// write-ahead journal, and the checkpoint/recovery path — including the
// crash-consistency guarantee that a run killed between journal append and
// apply converges to the exact schema of an uninterrupted run.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/csv.h"
#include "core/schema_json.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "store/state_store.h"

namespace pghive {
namespace store {
namespace {

PropertyGraph MakeTestGraph() {
  auto spec = DatasetSpecByName("POLE").value();
  GenerateOptions gen;
  gen.num_nodes = 240;
  gen.num_edges = 480;
  gen.seed = 99;
  return GenerateGraph(spec, gen).value();
}

StoreOptions FastOptions() {
  StoreOptions opt;
  // Hash embeddings keep the per-batch pipeline cheap, and no fsync keeps
  // the many small appends fast; neither affects the determinism under test.
  opt.incremental.pipeline.embedding.backend = EmbeddingBackend::kHash;
  opt.fsync = false;
  opt.checkpoint_every_batches = 2;
  return opt;
}

std::string TestDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/pghive_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void CorruptByteAt(const std::string& path, size_t offset_from_end) {
  std::string bytes = ReadFile(path).value();
  ASSERT_GT(bytes.size(), offset_from_end);
  bytes[bytes.size() - 1 - offset_from_end] ^= 0x5a;
  ASSERT_TRUE(WriteFile(path, bytes).ok());
}

// --- Binary primitives. ---

TEST(BinaryIoTest, RoundTripsScalars) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(1ull << 63);
  w.WriteDouble(-0.1);
  w.WriteString("hello");
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 7);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 1ull << 63);
  EXPECT_EQ(r.ReadDouble().value(), -0.1);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, TruncatedReadsFailWithoutCrashing) {
  BinaryWriter w;
  w.WriteU64(42);
  for (size_t len = 0; len < 8; ++len) {
    BinaryReader r(std::string_view(w.buffer()).substr(0, len));
    EXPECT_FALSE(r.ReadU64().ok()) << len;
  }
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.ReadString().ok());  // 42-byte string declared, 0 present
}

TEST(BinaryIoTest, Crc32MatchesKnownVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_NE(Crc32("123456789"), Crc32("123456780"));
}

// --- Codecs. ---

TEST(CodecTest, GraphRoundTripsExactly) {
  PropertyGraph g = MakeTestGraph();
  BinaryWriter w;
  EncodeGraph(g, &w);
  BinaryReader r(w.buffer());
  auto decoded = DecodeGraph(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(GraphsEqual(g, *decoded));

  BinaryWriter again;
  EncodeGraph(*decoded, &again);
  EXPECT_EQ(w.buffer(), again.buffer());  // bit-identical re-encode
}

TEST(CodecTest, BatchPayloadRejectsTrailingBytes) {
  BinaryWriter w;
  EncodeBatchPayload({}, {}, &w);
  w.WriteU8(0);
  BinaryReader r(w.buffer());
  auto decoded = DecodeBatchPayload(&r);
  EXPECT_FALSE(decoded.ok());
}

TEST(CodecTest, GraphDecodeNeverCrashesOnGarbage) {
  BinaryWriter w;
  EncodeGraph(MakeTestGraph(), &w);
  const std::string& good = w.buffer();
  for (size_t len : {0ul, 1ul, 5ul, good.size() / 2, good.size() - 1}) {
    BinaryReader r(std::string_view(good).substr(0, len));
    EXPECT_FALSE(DecodeGraph(&r).ok()) << "prefix " << len;
  }
  std::string garbage(200, '\xff');
  BinaryReader r(garbage);
  EXPECT_FALSE(DecodeGraph(&r).ok());
}

// --- Snapshot format. ---

StoreSnapshot MakeSnapshot() {
  StoreSnapshot snap;
  snap.applied_batches = 3;
  snap.options_fingerprint = 0x1234;
  snap.options_summary = "test";
  snap.graph = MakeTestGraph();
  snap.batch_seconds = {0.5, 0.25, 0.125};
  snap.aliases = {{"Firm", "Organisation"}, {"Org", "Organisation"}};
  snap.node_lsh.mu = 1.5;
  snap.node_lsh.num_tables = 12;
  snap.node_clusters = 9;
  return snap;
}

TEST(SnapshotTest, RoundTripsBitIdentically) {
  StoreSnapshot snap = MakeSnapshot();
  std::string bytes = EncodeSnapshot(snap);
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->applied_batches, snap.applied_batches);
  EXPECT_EQ(decoded->options_summary, snap.options_summary);
  EXPECT_EQ(decoded->batch_seconds, snap.batch_seconds);
  EXPECT_EQ(decoded->aliases, snap.aliases);
  EXPECT_EQ(decoded->node_lsh.num_tables, 12);
  EXPECT_TRUE(GraphsEqual(decoded->graph, snap.graph));
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes);
}

TEST(SnapshotTest, ParallelEncodeMatchesSequential) {
  StoreSnapshot snap = MakeSnapshot();
  ThreadPool pool(4);
  EXPECT_EQ(EncodeSnapshot(snap, &pool), EncodeSnapshot(snap, nullptr));
}

TEST(SnapshotTest, CorruptedSectionIsDetectedByName) {
  std::string bytes = EncodeSnapshot(MakeSnapshot());
  bytes[bytes.size() / 2] ^= 0x01;  // lands inside the large graph section
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("CRC mismatch"),
            std::string::npos)
      << decoded.status();

  auto info = InspectSnapshot(bytes);
  ASSERT_TRUE(info.ok()) << info.status();
  bool some_bad = false, some_good = false;
  for (const auto& s : info->sections) {
    (s.crc_ok ? some_good : some_bad) = true;
  }
  EXPECT_TRUE(some_bad);
  EXPECT_TRUE(some_good);  // corruption is pinned to one section
}

TEST(SnapshotTest, FileRoundTripAndTruncationRejection) {
  std::string dir = TestDir("snapfile");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/snap.pghs";
  std::string bytes = EncodeSnapshot(MakeSnapshot());
  ASSERT_TRUE(WriteSnapshotFile(path, bytes).ok());
  auto loaded = ReadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(EncodeSnapshot(*loaded), bytes);

  ASSERT_TRUE(WriteFile(path, bytes.substr(0, bytes.size() / 3)).ok());
  EXPECT_FALSE(ReadSnapshotFile(path).ok());
}

// --- Journal. ---

TEST(JournalTest, AppendsAndReadsBack) {
  std::string dir = TestDir("journal");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/journal-0.wal";
  PropertyGraph g = MakeTestGraph();
  std::vector<BatchPayload> batches = MakeStreamBatches(g, 3);

  JournalWriter writer;
  ASSERT_TRUE(writer.Open(path, /*fsync=*/false).ok());
  // Fresh segments carry the v3 header, so records use the v3 payload codec.
  EXPECT_EQ(writer.format_version(), kJournalFormatVersion);
  for (size_t i = 0; i < batches.size(); ++i) {
    BinaryWriter payload;
    EncodeBatchPayloadV3(batches[i], &payload);
    ASSERT_TRUE(writer.Append(i, payload.buffer()).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  auto read = ReadJournalSegment(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), batches.size());
  for (size_t i = 0; i < batches.size(); ++i) {
    EXPECT_EQ(read->records[i].batch_id, i);
    EXPECT_EQ(read->records[i].payload.nodes.size(), batches[i].nodes.size());
    EXPECT_EQ(read->records[i].payload.edges.size(), batches[i].edges.size());
  }
}

TEST(JournalTest, TornTailIsDetectedAndEarlierRecordsSurvive) {
  std::string dir = TestDir("torn");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/journal-0.wal";
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(path, /*fsync=*/false).ok());
  BinaryWriter payload;
  EncodeBatchPayloadV3(BatchPayload{}, &payload);
  ASSERT_TRUE(writer.Append(0, payload.buffer()).ok());
  ASSERT_TRUE(writer.Append(1, payload.buffer()).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::string full = ReadFile(path).value();
  const uint64_t full_size = full.size();
  // Cut the file anywhere inside the last record: the first record must
  // survive, the tail must be flagged, valid_bytes must point at the cut.
  for (size_t cut = 1; cut < 12; ++cut) {
    ASSERT_TRUE(WriteFile(path, full.substr(0, full.size() - cut)).ok());
    auto read = ReadJournalSegment(path);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_TRUE(read->torn_tail) << cut;
    ASSERT_EQ(read->records.size(), 1u) << cut;
    EXPECT_EQ(read->records[0].batch_id, 0u);
    EXPECT_LT(read->valid_bytes, full_size - cut);
  }

  // A flipped byte inside the last record body is caught by the CRC.
  ASSERT_TRUE(WriteFile(path, full).ok());
  CorruptByteAt(path, 2);
  auto read = ReadJournalSegment(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->records.size(), 1u);
}

// --- Stream batching. ---

TEST(StreamBatchesTest, EndpointClosedAndCoversGraph) {
  PropertyGraph g = MakeTestGraph();
  for (size_t nb : {1u, 3u, 7u}) {
    std::vector<BatchPayload> batches = MakeStreamBatches(g, nb);
    size_t nodes_seen = 0, edges_seen = 0;
    for (const BatchPayload& b : batches) {
      nodes_seen += b.nodes.size();
      for (const EdgeData& e : b.edges) {
        // Both endpoints must already be delivered once this batch lands.
        EXPECT_LT(e.source, nodes_seen);
        EXPECT_LT(e.target, nodes_seen);
      }
      edges_seen += b.edges.size();
    }
    EXPECT_EQ(nodes_seen, g.num_nodes());
    EXPECT_EQ(edges_seen, g.num_edges());
  }
}

// --- Fingerprint. ---

TEST(FingerprintTest, SensitiveToOutputAffectingOptionsOnly) {
  IncrementalOptions a;
  IncrementalOptions b = a;
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  b.pipeline.num_threads = 8;  // thread count never affects the output
  EXPECT_EQ(OptionsFingerprint(a), OptionsFingerprint(b));
  b.pipeline.seed = 43;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
  b = a;
  b.pipeline.extraction.jaccard_threshold = 0.8;
  EXPECT_NE(OptionsFingerprint(a), OptionsFingerprint(b));
}

// --- Durable discovery end to end. ---

/// Runs an uninterrupted durable discovery over `batches` and returns the
/// final schema as canonical JSON.
std::string UninterruptedRun(const std::string& dir,
                             const std::vector<BatchPayload>& batches) {
  RecoveryReport report;
  auto store = DurableDiscoverer::OpenOrRecover(dir, FastOptions(), &report);
  EXPECT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(report.fresh);
  for (const BatchPayload& b : batches) {
    EXPECT_TRUE((*store)->Feed(b).ok());
  }
  auto schema = (*store)->Finish();
  EXPECT_TRUE(schema.ok()) << schema.status();
  return SchemaToJson(*schema);
}

TEST(DurableDiscovererTest, MatchesUninterruptedRunAfterCrashAtEveryPoint) {
  PropertyGraph g = MakeTestGraph();
  const size_t kBatches = 6;
  std::vector<BatchPayload> batches = MakeStreamBatches(g, kBatches);
  ASSERT_EQ(batches.size(), kBatches);

  const std::string reference =
      UninterruptedRun(TestDir("reference"), batches);

  // Kill the process in the crash window (journal append done, apply not)
  // after every possible prefix and check recovery converges exactly.
  for (size_t cut = 0; cut < kBatches; ++cut) {
    std::string dir = TestDir("crash_" + std::to_string(cut));
    {
      auto store =
          DurableDiscoverer::OpenOrRecover(dir, FastOptions()).value();
      for (size_t i = 0; i < cut; ++i) {
        ASSERT_TRUE(store->Feed(batches[i]).ok());
      }
      ASSERT_TRUE(store->FeedJournalOnly(batches[cut]).ok());
      // The store object dies here — the batch exists only in the journal,
      // exactly like a process killed between append and apply.
    }
    RecoveryReport report;
    auto recovered =
        DurableDiscoverer::OpenOrRecover(dir, FastOptions(), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_FALSE(report.fresh);
    EXPECT_EQ((*recovered)->batches_applied(), cut + 1)
        << report.ToString();
    EXPECT_GE(report.replayed_batches, 1u) << report.ToString();
    for (size_t i = cut + 1; i < kBatches; ++i) {
      ASSERT_TRUE((*recovered)->Feed(batches[i]).ok());
    }
    auto schema = (*recovered)->Finish();
    ASSERT_TRUE(schema.ok()) << schema.status();
    EXPECT_EQ(SchemaToJson(*schema), reference) << "crash after batch "
                                                << cut;
  }
}

TEST(DurableDiscovererTest, TornJournalTailIsTruncatedAndRefed) {
  PropertyGraph g = MakeTestGraph();
  std::vector<BatchPayload> batches = MakeStreamBatches(g, 6);
  const std::string reference = UninterruptedRun(TestDir("ref2"), batches);

  std::string dir = TestDir("torn_tail");
  {
    StoreOptions opt = FastOptions();
    opt.checkpoint_every_batches = 0;  // keep everything in the journal
    auto store = DurableDiscoverer::OpenOrRecover(dir, opt).value();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(store->Feed(batches[i]).ok());
    }
  }
  // Chop bytes off the newest segment: batch 3's record becomes torn.
  std::vector<std::string> journals = ListJournalFiles(dir);
  ASSERT_EQ(journals.size(), 1u);
  std::string bytes = ReadFile(journals[0]).value();
  ASSERT_TRUE(WriteFile(journals[0], bytes.substr(0, bytes.size() - 7)).ok());

  RecoveryReport report;
  auto recovered =
      DurableDiscoverer::OpenOrRecover(dir, FastOptions(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(report.truncated_torn_tail);
  EXPECT_EQ((*recovered)->batches_applied(), 3u);  // batch 3 was discarded
  for (size_t i = 3; i < batches.size(); ++i) {
    ASSERT_TRUE((*recovered)->Feed(batches[i]).ok());
  }
  auto schema = (*recovered)->Finish();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(SchemaToJson(*schema), reference);
}

TEST(DurableDiscovererTest, CorruptNewestSnapshotFallsBackToOlder) {
  PropertyGraph g = MakeTestGraph();
  std::vector<BatchPayload> batches = MakeStreamBatches(g, 6);
  const std::string reference = UninterruptedRun(TestDir("ref3"), batches);

  std::string dir = TestDir("bad_snap");
  {
    auto store = DurableDiscoverer::OpenOrRecover(dir, FastOptions()).value();
    for (const BatchPayload& b : batches) {
      ASSERT_TRUE(store->Feed(b).ok());
    }
    ASSERT_TRUE(store->Finish().ok());
  }
  std::vector<std::string> snapshots = ListSnapshotFiles(dir);
  ASSERT_GE(snapshots.size(), 2u);  // keep_extra_snapshots retains one
  CorruptByteAt(snapshots[0], 10);

  RecoveryReport report;
  auto recovered =
      DurableDiscoverer::OpenOrRecover(dir, FastOptions(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ASSERT_EQ(report.corrupt_snapshots.size(), 1u);
  EXPECT_EQ(report.snapshot_path, snapshots[1]);
  // The older snapshot is behind; re-feeding from its applied count
  // converges to the same schema.
  for (size_t i = (*recovered)->batches_applied(); i < batches.size(); ++i) {
    ASSERT_TRUE((*recovered)->Feed(batches[i]).ok());
  }
  auto schema = (*recovered)->Finish();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(SchemaToJson(*schema), reference);
}

TEST(DurableDiscovererTest, CheckpointPolicyPrunesJournalAndSnapshots) {
  PropertyGraph g = MakeTestGraph();
  std::vector<BatchPayload> batches = MakeStreamBatches(g, 6);
  std::string dir = TestDir("policy");
  StoreOptions opt = FastOptions();
  opt.checkpoint_every_batches = 2;
  opt.keep_extra_snapshots = 0;
  auto store = DurableDiscoverer::OpenOrRecover(dir, opt).value();
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store->Feed(batches[i]).ok());
  }
  // Two checkpoints fired; only the newest snapshot and no journal remain.
  EXPECT_EQ(ListSnapshotFiles(dir).size(), 1u);
  EXPECT_TRUE(ListJournalFiles(dir).empty());

  ASSERT_TRUE(store->Feed(batches[4]).ok());
  EXPECT_EQ(ListJournalFiles(dir).size(), 1u);  // one unapplied-side segment
}

TEST(DurableDiscovererTest, RefusesStateFromDifferentOptions) {
  PropertyGraph g = MakeTestGraph();
  std::vector<BatchPayload> batches = MakeStreamBatches(g, 3);
  std::string dir = TestDir("mismatch");
  {
    auto store = DurableDiscoverer::OpenOrRecover(dir, FastOptions()).value();
    for (const BatchPayload& b : batches) {
      ASSERT_TRUE(store->Feed(b).ok());
    }
    ASSERT_TRUE(store->Checkpoint().ok());
  }
  StoreOptions other = FastOptions();
  other.incremental.pipeline.seed = 1;
  auto refused = DurableDiscoverer::OpenOrRecover(dir, other);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  other.allow_options_mismatch = true;
  EXPECT_TRUE(DurableDiscoverer::OpenOrRecover(dir, other).ok());

  // num_threads is not part of the fingerprint: resuming on a different
  // machine shape is always allowed.
  StoreOptions threads = FastOptions();
  threads.incremental.pipeline.num_threads = 4;
  EXPECT_TRUE(DurableDiscoverer::OpenOrRecover(dir, threads).ok());
}

}  // namespace
}  // namespace store
}  // namespace pghive
