// Tests for the evaluation harness: majority-F1*, Friedman/Nemenyi ranking,
// the experiment runner, ground truth and report rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/experiment.h"
#include "eval/f1.h"
#include "eval/ground_truth.h"
#include "eval/ranking.h"
#include "eval/report.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

// ---------- majority F1 ----------

TEST(MajorityF1Test, PerfectClustering) {
  std::vector<std::string> truth = {"A", "A", "B", "B"};
  auto truth_of = [&](size_t i) -> const std::string& { return truth[i]; };
  std::vector<std::vector<size_t>> clusters = {{0, 1}, {2, 3}};
  F1Result r = MajorityF1(clusters, truth_of);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_EQ(r.instances, 4u);
}

TEST(MajorityF1Test, FragmentedButPureStaysPerfect) {
  // Majority-based F1 does not penalize fragmentation (paper's metric).
  std::vector<std::string> truth = {"A", "A", "A", "A"};
  auto truth_of = [&](size_t i) -> const std::string& { return truth[i]; };
  std::vector<std::vector<size_t>> clusters = {{0}, {1}, {2, 3}};
  F1Result r = MajorityF1(clusters, truth_of);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(MajorityF1Test, MixedClusterPenalized) {
  std::vector<std::string> truth = {"A", "A", "A", "B"};
  auto truth_of = [&](size_t i) -> const std::string& { return truth[i]; };
  std::vector<std::vector<size_t>> clusters = {{0, 1, 2, 3}};
  F1Result r = MajorityF1(clusters, truth_of);
  // Majority = A: 3 correct, 1 wrong. A: P=0.75, R=1; B: P=0, R=0.
  EXPECT_DOUBLE_EQ(r.accuracy, 0.75);
  // Weighted F1 = (3 * F1_A + 1 * F1_B) / 4, F1_A = 2*.75/1.75.
  double f1_a = 2.0 * 0.75 * 1.0 / 1.75;
  EXPECT_NEAR(r.f1, (3 * f1_a + 0) / 4.0, 1e-12);
}

TEST(MajorityF1Test, HandComputedTwoClusterCase) {
  // Cluster 1: {A, A, B} -> majority A. Cluster 2: {B, B} -> majority B.
  std::vector<std::string> truth = {"A", "A", "B", "B", "B"};
  auto truth_of = [&](size_t i) -> const std::string& { return truth[i]; };
  std::vector<std::vector<size_t>> clusters = {{0, 1, 2}, {3, 4}};
  std::vector<PerTypeF1> per_type;
  F1Result r = MajorityF1(clusters, truth_of, &per_type);
  // A: TP=2 FP=1 FN=0 -> P=2/3, R=1, F1=0.8
  // B: TP=2 FP=0 FN=1 -> P=1, R=2/3, F1=0.8
  EXPECT_NEAR(r.f1, 0.8, 1e-12);
  EXPECT_NEAR(r.accuracy, 0.8, 1e-12);
  ASSERT_EQ(per_type.size(), 2u);
  EXPECT_EQ(per_type[0].type, "B");  // larger support first
  EXPECT_EQ(per_type[0].support, 3u);
}

TEST(MajorityF1Test, EmptyTruthIgnored) {
  std::vector<std::string> truth = {"A", "", "A"};
  auto truth_of = [&](size_t i) -> const std::string& { return truth[i]; };
  F1Result r = MajorityF1({{0, 1, 2}}, truth_of);
  EXPECT_EQ(r.instances, 2u);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(MajorityF1Test, NoClusters) {
  auto truth_of = [](size_t) -> const std::string& {
    static const std::string kEmpty;
    return kEmpty;
  };
  F1Result r = MajorityF1({}, truth_of);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
  EXPECT_EQ(r.instances, 0u);
}

TEST(MajorityF1Test, SchemaOverloadsUseInstanceLists) {
  PropertyGraph g = MakeFigure1Graph();
  SchemaGraph schema;
  SchemaNodeType t;
  t.name = "all";
  for (const auto& n : g.nodes()) t.instances.push_back(n.id);
  schema.node_types.push_back(t);
  F1Result r = MajorityF1Nodes(g, schema);
  EXPECT_LT(r.f1, 1.0);  // one mega-cluster mixes the four types
  EXPECT_EQ(r.instances, g.num_nodes());
}

// ---------- ranking ----------

TEST(RankingTest, RejectsBadInput) {
  EXPECT_FALSE(NemenyiAnalysis({"only"}, {{1.0}}).ok());
  EXPECT_FALSE(NemenyiAnalysis({"a", "b"}, {}).ok());
  EXPECT_FALSE(NemenyiAnalysis({"a", "b"}, {{1.0}}).ok());  // ragged
}

TEST(RankingTest, DominantMethodGetsRankOne) {
  std::vector<std::vector<double>> scores = {
      {0.9, 0.5, 0.3}, {0.8, 0.6, 0.4}, {0.95, 0.7, 0.1}};
  auto r = NemenyiAnalysis({"best", "mid", "worst"}, scores);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->average_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(r->average_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(r->average_ranks[2], 3.0);
  EXPECT_GT(r->friedman_chi2, 0.0);
  EXPECT_EQ(r->num_cases, 3u);
}

TEST(RankingTest, CriticalDifferenceFormula) {
  // CD = q_alpha(k) * sqrt(k(k+1) / (6N)); for k=4, N=40:
  // q = 2.569, CD = 2.569 * sqrt(20/240) = 2.569 * 0.2887 ≈ 0.7417.
  std::vector<std::vector<double>> scores(40, {4, 3, 2, 1});
  auto r = NemenyiAnalysis({"a", "b", "c", "d"}, scores);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->critical_difference, 2.569 * std::sqrt(20.0 / 240.0), 1e-9);
  EXPECT_TRUE(r->SignificantlyDifferent(0, 3));
  EXPECT_TRUE(r->SignificantlyDifferent(0, 1));
}

TEST(RankingTest, IndistinguishableMethodsNotSignificant) {
  // Two methods that alternate winning by a hair.
  std::vector<std::vector<double>> scores;
  for (int i = 0; i < 20; ++i) {
    scores.push_back(i % 2 ? std::vector<double>{0.9, 0.91}
                           : std::vector<double>{0.91, 0.9});
  }
  auto r = NemenyiAnalysis({"a", "b"}, scores);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->SignificantlyDifferent(0, 1));
}

TEST(RankingTest, QAlphaTable) {
  EXPECT_DOUBLE_EQ(NemenyiQAlpha05(2), 1.960);
  EXPECT_DOUBLE_EQ(NemenyiQAlpha05(4), 2.569);
  EXPECT_DOUBLE_EQ(NemenyiQAlpha05(10), 3.164);
  EXPECT_GT(NemenyiQAlpha05(12), 3.164);
}

// ---------- ground truth ----------

TEST(GroundTruthTest, TypeEnumeration) {
  PropertyGraph g = MakeFigure1Graph();
  EXPECT_EQ(TrueNodeTypes(g).size(), 4u);
  EXPECT_EQ(TrueEdgeTypes(g).size(), 4u);
  EXPECT_TRUE(HasCompleteGroundTruth(g));
  g.AddNode({"X"}, {});  // no truth annotation
  EXPECT_FALSE(HasCompleteGroundTruth(g));
}

// ---------- experiment runner ----------

TEST(ExperimentTest, MethodSupportMatrix) {
  EXPECT_TRUE(MethodSupportsLabelAvailability(Method::kPgHiveElsh, 0.0));
  EXPECT_TRUE(MethodSupportsLabelAvailability(Method::kPgHiveMinHash, 0.5));
  EXPECT_FALSE(MethodSupportsLabelAvailability(Method::kGmmSchema, 0.5));
  EXPECT_FALSE(MethodSupportsLabelAvailability(Method::kSchemI, 0.0));
  EXPECT_TRUE(MethodSupportsLabelAvailability(Method::kSchemI, 1.0));
}

TEST(ExperimentTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kPgHiveElsh), "PG-HIVE-ELSH");
  EXPECT_STREQ(MethodName(Method::kGmmSchema), "GMMSchema");
  EXPECT_EQ(AllMethods().size(), 4u);
}

TEST(ExperimentTest, RunsAllMethodsOnCleanPole) {
  ExperimentConfig config;
  config.size_scale = 0.2;
  auto g = GenerateForExperiment(MakePoleSpec(), config).value();
  for (Method m : AllMethods()) {
    ExperimentResult r = RunMethod(g, m, config);
    EXPECT_TRUE(r.ran) << MethodName(m) << ": " << r.failure;
    EXPECT_GT(r.node_f1.f1, 0.8) << MethodName(m);
    EXPECT_GT(r.seconds, 0.0);
    if (m == Method::kGmmSchema) {
      EXPECT_FALSE(r.has_edge_types);
    } else {
      EXPECT_TRUE(r.has_edge_types);
    }
  }
}

TEST(ExperimentTest, BaselinesRefuseUnlabeledInput) {
  ExperimentConfig config;
  config.size_scale = 0.1;
  auto g = GenerateForExperiment(MakePoleSpec(), config).value();
  NoiseOptions nopt;
  nopt.label_availability = 0.0;
  auto unlabeled = InjectNoise(g, nopt).value();
  ExperimentResult r = RunMethod(unlabeled, Method::kSchemI, config);
  EXPECT_FALSE(r.ran);
  EXPECT_FALSE(r.failure.empty());
}

// ---------- report ----------

TEST(ReportTest, TextTableAligned) {
  TextTable t({"name", "value"});
  t.AddRow({"short", "1"});
  t.AddRow({"a-much-longer-name", "23456"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, AsciiBar) {
  EXPECT_EQ(AsciiBar(1.0, 4), "####");
  EXPECT_EQ(AsciiBar(0.0, 4), "....");
  EXPECT_EQ(AsciiBar(0.5, 4), "##..");
  EXPECT_EQ(AsciiBar(2.0, 4), "####");  // clamped
}

TEST(ReportTest, Banner) {
  std::string b = Banner("Title");
  EXPECT_NE(b.find("== Title =="), std::string::npos);
}

}  // namespace
}  // namespace pghive
