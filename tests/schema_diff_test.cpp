// Tests for schema diffing.

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "core/schema_diff.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"

namespace pghive {
namespace {

SchemaGraph BaseSchema() {
  SchemaGraph s;
  SchemaNodeType person;
  person.name = "Person";
  person.labels = {"Person"};
  person.property_keys = {"name"};
  person.constraints["name"] = {DataType::kString, true};
  s.node_types.push_back(person);
  SchemaEdgeType knows;
  knows.name = "KNOWS";
  knows.labels = {"KNOWS"};
  knows.source_labels = {"Person"};
  knows.target_labels = {"Person"};
  knows.cardinality = SchemaCardinality::kZeroOrOne;
  s.edge_types.push_back(knows);
  return s;
}

TEST(SchemaDiffTest, IdenticalSchemasNoChanges) {
  SchemaGraph s = BaseSchema();
  SchemaDiff diff = DiffSchemas(s, s);
  EXPECT_TRUE(diff.Empty());
  EXPECT_EQ(diff.ToString(), "no changes\n");
}

TEST(SchemaDiffTest, AddedAndRemovedTypes) {
  SchemaGraph from = BaseSchema();
  SchemaGraph to = BaseSchema();
  SchemaNodeType org;
  org.name = "Org";
  org.labels = {"Org"};
  to.node_types.push_back(org);
  from.edge_types.clear();

  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.added_node_types.size(), 1u);
  EXPECT_EQ(diff.added_node_types[0], "Org");
  ASSERT_EQ(diff.added_edge_types.size(), 1u);
  EXPECT_EQ(diff.added_edge_types[0], "KNOWS");
  EXPECT_TRUE(diff.removed_node_types.empty());

  SchemaDiff reverse = DiffSchemas(to, from);
  ASSERT_EQ(reverse.removed_node_types.size(), 1u);
  EXPECT_EQ(reverse.removed_node_types[0], "Org");
  ASSERT_EQ(reverse.removed_edge_types.size(), 1u);
}

TEST(SchemaDiffTest, PropertyGrowthDetected) {
  SchemaGraph from = BaseSchema();
  SchemaGraph to = BaseSchema();
  to.node_types[0].property_keys.insert("email");
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].name, "Person");
  EXPECT_EQ(diff.changed_types[0].added_properties,
            (std::set<std::string>{"email"}));
}

TEST(SchemaDiffTest, ConstraintRelaxationDetected) {
  SchemaGraph from = BaseSchema();
  SchemaGraph to = BaseSchema();
  to.node_types[0].constraints["name"] = {DataType::kString, false};
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  ASSERT_EQ(diff.changed_types[0].became_optional.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].became_optional[0], "name");
}

TEST(SchemaDiffTest, DatatypeWideningDetected) {
  SchemaGraph from = BaseSchema();
  from.node_types[0].constraints["age"] = {DataType::kInt, false};
  from.node_types[0].property_keys.insert("age");
  SchemaGraph to = from;
  to.node_types[0].constraints["age"] = {DataType::kDouble, false};
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  ASSERT_EQ(diff.changed_types[0].datatype_changes.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].datatype_changes[0], "age: Int -> Double");
}

TEST(SchemaDiffTest, CardinalityUpgradeDetected) {
  SchemaGraph from = BaseSchema();
  SchemaGraph to = BaseSchema();
  to.edge_types[0].cardinality = SchemaCardinality::kManyToMany;
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].cardinality_change, "0:1 -> M:N");
}

TEST(SchemaDiffTest, EndpointGrowthDetected) {
  SchemaGraph from = BaseSchema();
  SchemaGraph to = BaseSchema();
  to.edge_types[0].target_labels.insert("Bot");
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].added_target_labels,
            (std::set<std::string>{"Bot"}));
}

TEST(SchemaDiffTest, AbstractTypesMatchedByName) {
  SchemaGraph from, to;
  SchemaNodeType a;
  a.name = "ABSTRACT_0";
  a.is_abstract = true;
  a.property_keys = {"x"};
  from.node_types.push_back(a);
  a.property_keys.insert("y");
  to.node_types.push_back(a);
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].added_properties,
            (std::set<std::string>{"y"}));
}

TEST(SchemaDiffTest, IncrementalBatchesProduceMonotoneDiffs) {
  // The incremental chain never removes anything (§4.6): each diff between
  // consecutive schemas has no removals.
  auto g = GenerateGraph(MakePoleSpec(),
                         GenerateOptions{.num_nodes = 600, .num_edges = 1100})
               .value();
  IncrementalDiscoverer discoverer;
  SchemaGraph previous;
  for (const auto& batch : SplitIntoBatches(g, 5)) {
    ASSERT_TRUE(discoverer.Feed(batch).ok());
    SchemaDiff diff = DiffSchemas(previous, discoverer.schema());
    EXPECT_TRUE(diff.removed_node_types.empty());
    EXPECT_TRUE(diff.removed_edge_types.empty());
    for (const auto& c : diff.changed_types) {
      EXPECT_TRUE(c.removed_labels.empty());
      EXPECT_TRUE(c.removed_properties.empty());
    }
    previous = discoverer.schema();
  }
}

TEST(SchemaDiffTest, RenderingContainsSections) {
  SchemaGraph from = BaseSchema();
  SchemaGraph to = BaseSchema();
  SchemaNodeType org;
  org.name = "Org";
  org.labels = {"Org"};
  to.node_types.push_back(org);
  to.node_types[0].property_keys.insert("email");
  std::string text = DiffSchemas(from, to).ToString();
  EXPECT_NE(text.find("+ node types: Org"), std::string::npos);
  EXPECT_NE(text.find("~ node Person"), std::string::npos);
  EXPECT_NE(text.find("+properties: email"), std::string::npos);
}

}  // namespace
}  // namespace pghive
