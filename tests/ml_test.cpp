// Unit tests for the ML substrate: statistics, k-means, GMM.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/gmm.h"
#include "ml/kmeans.h"
#include "ml/stats.h"

namespace pghive {
namespace {

// ---------- stats ----------

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_NEAR(StdDev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(StatsTest, Median) {
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, LogSumExpStable) {
  // log(e^1000 + e^1000) = 1000 + log 2; naive evaluation overflows.
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({0.0}), 0.0, 1e-12);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

TEST(StatsTest, AverageRanksSimple) {
  // Method 0 always best, method 2 always worst.
  std::vector<std::vector<double>> rows = {{0.9, 0.5, 0.1}, {0.8, 0.6, 0.2}};
  auto ranks = AverageRanks(rows);
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

TEST(StatsTest, AverageRanksTiesShareMean) {
  std::vector<std::vector<double>> rows = {{0.5, 0.5, 0.1}};
  auto ranks = AverageRanks(rows);
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 1.5);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
}

// ---------- k-means ----------

std::vector<std::vector<double>> TwoBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> pts;
  for (size_t i = 0; i < per_blob; ++i) {
    pts.push_back({rng.Normal(0.0, 0.3), rng.Normal(0.0, 0.3)});
  }
  for (size_t i = 0; i < per_blob; ++i) {
    pts.push_back({rng.Normal(10.0, 0.3), rng.Normal(10.0, 0.3)});
  }
  return pts;
}

TEST(KMeansTest, RejectsBadInput) {
  EXPECT_FALSE(KMeans({}, 2).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1).ok());  // ragged
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  auto pts = TwoBlobs(50, 1);
  auto result = KMeans(pts, 2);
  ASSERT_TRUE(result.ok());
  // All points of each blob share an assignment.
  for (size_t i = 1; i < 50; ++i) {
    EXPECT_EQ(result->assignments[i], result->assignments[0]);
  }
  for (size_t i = 51; i < 100; ++i) {
    EXPECT_EQ(result->assignments[i], result->assignments[50]);
  }
  EXPECT_NE(result->assignments[0], result->assignments[50]);
  EXPECT_LT(result->inertia, 100.0);
}

TEST(KMeansTest, KLargerThanNReduces) {
  std::vector<std::vector<double>> pts = {{0.0}, {1.0}};
  auto result = KMeans(pts, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(KMeansTest, Deterministic) {
  auto pts = TwoBlobs(30, 2);
  auto r1 = KMeans(pts, 2);
  auto r2 = KMeans(pts, 2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->assignments, r2->assignments);
}

// ---------- GMM ----------

TEST(GmmTest, RejectsBadInput) {
  EXPECT_FALSE(FitGmm({}, 2).ok());
  EXPECT_FALSE(FitGmm({{1.0}}, 0).ok());
}

TEST(GmmTest, FitsTwoBlobs) {
  auto pts = TwoBlobs(60, 3);
  auto model = FitGmm(pts, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_components(), 2);
  // Weights roughly balanced and summing to 1.
  EXPECT_NEAR(model->weights[0] + model->weights[1], 1.0, 1e-6);
  EXPECT_NEAR(model->weights[0], 0.5, 0.1);
  // Prediction separates the blobs.
  int c0 = model->Predict({0.0, 0.0});
  int c1 = model->Predict({10.0, 10.0});
  EXPECT_NE(c0, c1);
}

TEST(GmmTest, ResponsibilitiesSumToOne) {
  auto pts = TwoBlobs(40, 4);
  auto model = FitGmm(pts, 3);
  ASSERT_TRUE(model.ok());
  auto resp = model->Responsibilities({5.0, 5.0});
  double sum = 0;
  for (double r : resp) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GmmTest, LogLikelihoodImprovesOverSingleComponent) {
  auto pts = TwoBlobs(60, 5);
  auto one = FitGmm(pts, 1);
  auto two = FitGmm(pts, 2);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_GT(two->log_likelihood, one->log_likelihood);
}

TEST(GmmTest, BicSelectsTrueComponentCount) {
  auto pts = TwoBlobs(80, 6);
  auto best = FitGmmBic(pts, 1, 4);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->num_components(), 2);
}

TEST(GmmTest, BicPenalizesOverfitOnSingleBlob) {
  Rng rng(7);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.Normal(0.0, 1.0), rng.Normal(0.0, 1.0)});
  }
  auto best = FitGmmBic(pts, 1, 4);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->num_components(), 1);
}

TEST(GmmTest, VarianceFloorPreventsDegeneracy) {
  // All points identical: variances must stay at the floor, not collapse.
  std::vector<std::vector<double>> pts(20, std::vector<double>{1.0, 2.0});
  GmmOptions opt;
  auto model = FitGmm(pts, 2, opt);
  ASSERT_TRUE(model.ok());
  for (const auto& var : model->variances) {
    for (double v : var) EXPECT_GE(v, opt.min_variance - 1e-12);
  }
}

TEST(GmmTest, InvalidBicRange) {
  auto pts = TwoBlobs(10, 8);
  EXPECT_FALSE(FitGmmBic(pts, 0, 3).ok());
  EXPECT_FALSE(FitGmmBic(pts, 3, 2).ok());
}

}  // namespace
}  // namespace pghive
