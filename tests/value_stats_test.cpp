// Tests for property value statistics and enumeration detection.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/value_stats.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

// Builds a graph with one node type owning all nodes and computes its stats.
TypeValueStats StatsOf(std::vector<std::map<std::string, Value>> props,
                       const ValueStatsOptions& options = {}) {
  PropertyGraph g;
  SchemaGraph schema;
  SchemaNodeType t;
  t.name = "T";
  t.labels = {"T"};
  for (auto& p : props) {
    for (const auto& [k, v] : p) t.property_keys.insert(k);
    t.instances.push_back(g.AddNode({"T"}, std::move(p), "T"));
  }
  schema.node_types.push_back(std::move(t));
  return ComputeValueStats(g, schema, options).node_types[0];
}

TEST(ValueStatsTest, CountsObservedAbsentDistinct) {
  auto stats = StatsOf({{{"x", Value::Int(1)}},
                        {{"x", Value::Int(1)}},
                        {{"x", Value::Int(2)}},
                        {}});
  const PropertyStats& x = stats.at("x");
  EXPECT_EQ(x.observed, 3u);
  EXPECT_EQ(x.absent, 1u);
  EXPECT_EQ(x.distinct, 2u);
}

TEST(ValueStatsTest, NumericRange) {
  auto stats = StatsOf({{{"v", Value::Int(5)}},
                        {{"v", Value::Double(-2.5)}},
                        {{"v", Value::Int(100)}}});
  const PropertyStats& v = stats.at("v");
  EXPECT_EQ(v.numeric_count, 3u);
  EXPECT_DOUBLE_EQ(v.numeric_min, -2.5);
  EXPECT_DOUBLE_EQ(v.numeric_max, 100.0);
}

TEST(ValueStatsTest, LexicalRangeForStrings) {
  auto stats = StatsOf({{{"s", Value::String("banana")}},
                        {{"s", Value::String("apple")}},
                        {{"s", Value::String("cherry")}}});
  const PropertyStats& s = stats.at("s");
  EXPECT_EQ(s.lexical_min, "apple");
  EXPECT_EQ(s.lexical_max, "cherry");
  EXPECT_EQ(s.numeric_count, 0u);
}

TEST(ValueStatsTest, TopValuesRankedByFrequency) {
  std::vector<std::map<std::string, Value>> props;
  for (int i = 0; i < 5; ++i) props.push_back({{"c", Value::String("hi")}});
  for (int i = 0; i < 3; ++i) props.push_back({{"c", Value::String("mid")}});
  props.push_back({{"c", Value::String("lo")}});
  ValueStatsOptions opt;
  opt.top_k = 2;
  auto stats = StatsOf(std::move(props), opt);
  const PropertyStats& c = stats.at("c");
  ASSERT_EQ(c.top_values.size(), 2u);
  EXPECT_EQ(c.top_values[0].first, "hi");
  EXPECT_EQ(c.top_values[0].second, 5u);
  EXPECT_EQ(c.top_values[1].first, "mid");
}

TEST(ValueStatsTest, EnumDetection) {
  // 30 observations over 3 values -> enumeration.
  std::vector<std::map<std::string, Value>> props;
  const char* states[] = {"open", "closed", "pending"};
  for (int i = 0; i < 30; ++i) {
    props.push_back({{"state", Value::String(states[i % 3])},
                     {"id", Value::Int(i)}});
  }
  auto stats = StatsOf(std::move(props));
  const PropertyStats& state = stats.at("state");
  EXPECT_TRUE(state.enum_candidate);
  EXPECT_EQ(state.enum_domain,
            (std::vector<std::string>{"closed", "open", "pending"}));
  // A unique-per-instance id is not an enum.
  EXPECT_FALSE(stats.at("id").enum_candidate);
}

TEST(ValueStatsTest, SmallSupportNotEnum) {
  // 3 observations of 1 value: too few to call it an enumeration.
  auto stats = StatsOf({{{"x", Value::String("a")}},
                        {{"x", Value::String("a")}},
                        {{"x", Value::String("a")}}});
  EXPECT_FALSE(stats.at("x").enum_candidate);
}

TEST(ValueStatsTest, FormatRendering) {
  std::vector<std::map<std::string, Value>> props;
  for (int i = 0; i < 20; ++i) {
    props.push_back({{"flag", Value::Bool(i % 2 == 0)}});
  }
  auto stats = StatsOf(std::move(props));
  std::string line = FormatPropertyStats(stats.at("flag"));
  EXPECT_NE(line.find("observed=20"), std::string::npos);
  EXPECT_NE(line.find("distinct=2"), std::string::npos);
  EXPECT_NE(line.find("ENUM{false, true}"), std::string::npos);
}

TEST(ValueStatsTest, WorksOnDiscoveredSchema) {
  auto g = GenerateGraph(MakePoleSpec(),
                         GenerateOptions{.num_nodes = 400, .num_edges = 700})
               .value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g).value();
  SchemaValueStats stats = ComputeValueStats(g, schema);
  ASSERT_EQ(stats.node_types.size(), schema.node_types.size());
  ASSERT_EQ(stats.edge_types.size(), schema.edge_types.size());
  // Observed + absent always equals the type's instance count.
  for (size_t t = 0; t < stats.node_types.size(); ++t) {
    for (const auto& [key, s] : stats.node_types[t]) {
      EXPECT_EQ(s.observed + s.absent,
                schema.node_types[t].instances.size());
    }
  }
}

}  // namespace
}  // namespace pghive
