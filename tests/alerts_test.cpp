// Alert-rule engine (obs/alerts.h): rule parsing + Spec round-trip, glob
// matching, the fire/resolve state machine over synthetic SchemaDiffs and
// metric snapshots, state persistence across an engine restart, and the
// determinism gate — evolution-scenario streams fire and resolve the SAME
// alerts at the SAME epochs at 1 and 8 discovery threads.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/schema_diff.h"
#include "datagen/evolution.h"
#include "drift/drift_tracker.h"
#include "drift/replay.h"
#include "graph/property_graph.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "text/label_embedder.h"

namespace pghive {
namespace obs {
namespace {

std::vector<AlertRule> MustParse(const std::string& text) {
  auto rules = ParseAlertRules(text);
  EXPECT_TRUE(rules.ok()) << rules.status();
  return rules.ok() ? *rules : std::vector<AlertRule>{};
}

// --- GlobMatch. ---

TEST(GlobMatchTest, StarQuestionAndLiterals) {
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("Person*", "Person"));
  EXPECT_TRUE(GlobMatch("Person*", "PersonV2"));
  EXPECT_FALSE(GlobMatch("Person*", "Employee"));
  EXPECT_TRUE(GlobMatch("*name*", "first_name_alt"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
  EXPECT_TRUE(GlobMatch("*:N->*", "1:N->M:N"));
  EXPECT_FALSE(GlobMatch("", "x"));
  EXPECT_TRUE(GlobMatch("", ""));
}

// --- ParseAlertRules. ---

TEST(ParseAlertRulesTest, ParsesDriftAndMetricRules) {
  const std::vector<AlertRule> rules = MustParse(
      "# comment-only line\n"
      "alert mand drift became_mandatory type=Person* property=age "
      "resolve_after=3\n"
      "\n"
      "alert retired drift type_retired   # trailing comment\n"
      "alert deep metric pghive.serve.queue_depth.pole > 32\n");
  ASSERT_EQ(rules.size(), 3u);

  EXPECT_EQ(rules[0].name, "mand");
  EXPECT_EQ(rules[0].kind, AlertKind::kDrift);
  EXPECT_EQ(rules[0].event, "became_mandatory");
  EXPECT_EQ(rules[0].type_glob, "Person*");
  EXPECT_EQ(rules[0].property_glob, "age");
  EXPECT_EQ(rules[0].resolve_after, 3u);

  EXPECT_EQ(rules[1].event, "type_retired");
  EXPECT_EQ(rules[1].type_glob, "*");
  EXPECT_EQ(rules[1].resolve_after, 1u);

  EXPECT_EQ(rules[2].kind, AlertKind::kMetric);
  EXPECT_EQ(rules[2].metric, "pghive.serve.queue_depth.pole");
  EXPECT_EQ(rules[2].op, ">");
  EXPECT_DOUBLE_EQ(rules[2].threshold, 32.0);
}

TEST(ParseAlertRulesTest, SpecRoundTripsThroughParser) {
  const std::string text =
      "alert mand drift became_mandatory type=Person* property=age "
      "resolve_after=3\n"
      "alert retired drift type_retired\n"
      "alert deep metric pghive.serve.queue_depth.pole >= 32.5 "
      "resolve_after=2\n";
  const std::vector<AlertRule> first = MustParse(text);
  std::string rendered;
  for (const AlertRule& rule : first) rendered += rule.Spec() + "\n";
  const std::vector<AlertRule> second = MustParse(rendered);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].Spec(), second[i].Spec());
  }
}

TEST(ParseAlertRulesTest, ErrorsNameTheOffendingLine) {
  auto bad_event = ParseAlertRules("alert a drift exploded\n");
  ASSERT_FALSE(bad_event.ok());
  EXPECT_NE(bad_event.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(bad_event.status().message().find("exploded"),
            std::string::npos);

  auto bad_op = ParseAlertRules("# ok\nalert a metric m ~ 3\n");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_NE(bad_op.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseAlertRules("alert a drift\n").ok());  // too few tokens
  EXPECT_FALSE(ParseAlertRules("alert a metric m > nope\n").ok());
  EXPECT_FALSE(
      ParseAlertRules("alert a drift type_added resolve_after=0\n").ok());
  EXPECT_FALSE(ParseAlertRules("alert a drift type_added bogus=1\n").ok());

  auto dup = ParseAlertRules(
      "alert a drift type_added\nalert a drift type_retired\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
}

// --- Fire/resolve state machine over synthetic diffs. ---

SchemaDiff RetireDiff(const std::string& type_name) {
  SchemaDiff diff;
  diff.removed_node_types.push_back(type_name);
  return diff;
}

TEST(AlertEngineTest, DriftRuleFiresAndResolvesAfterCleanEpochs) {
  AlertEngine engine(MustParse("alert gone drift type_retired "
                               "resolve_after=2\n"));
  const MetricsSnapshot no_metrics;

  const SchemaDiff hit = RetireDiff("Legacy");
  EXPECT_TRUE(engine.ObserveEpoch(1, &hit, no_metrics));  // fire
  {
    const AlertState s = engine.States().at(0);
    EXPECT_TRUE(s.firing);
    EXPECT_EQ(s.fired_epoch, 1u);
    EXPECT_EQ(s.fire_count, 1u);
    EXPECT_EQ(s.last_detail, "node type Legacy retired");
  }
  EXPECT_EQ(engine.FiringNames(), std::vector<std::string>{"gone"});

  // One clean epoch: resolve_after=2 keeps it firing.
  EXPECT_FALSE(engine.ObserveEpoch(2, nullptr, no_metrics));
  EXPECT_TRUE(engine.States().at(0).firing);

  // Second clean epoch: resolves.
  EXPECT_TRUE(engine.ObserveEpoch(3, nullptr, no_metrics));
  {
    const AlertState s = engine.States().at(0);
    EXPECT_FALSE(s.firing);
    EXPECT_EQ(s.resolved_epoch, 3u);
    EXPECT_EQ(s.fire_count, 1u);
  }
  EXPECT_TRUE(engine.FiringNames().empty());

  // A re-match while resolved is a second fire transition.
  EXPECT_TRUE(engine.ObserveEpoch(4, &hit, no_metrics));
  EXPECT_EQ(engine.States().at(0).fire_count, 2u);

  // A re-match while firing refreshes the clock without re-firing.
  EXPECT_FALSE(engine.ObserveEpoch(5, &hit, no_metrics));
  EXPECT_FALSE(engine.ObserveEpoch(6, nullptr, no_metrics));
  EXPECT_TRUE(engine.States().at(0).firing);  // clock runs from epoch 5
  EXPECT_TRUE(engine.ObserveEpoch(7, nullptr, no_metrics));
  EXPECT_FALSE(engine.States().at(0).firing);
}

TEST(AlertEngineTest, GlobsFilterTypeAndProperty) {
  AlertEngine engine(MustParse(
      "alert person_age drift became_mandatory type=Person* property=age\n"));
  const MetricsSnapshot no_metrics;

  SchemaDiff wrong_type;
  TypeChange other;
  other.name = "Employee";
  other.became_mandatory.push_back("age");
  wrong_type.changed_types.push_back(other);
  EXPECT_FALSE(engine.ObserveEpoch(1, &wrong_type, no_metrics));

  SchemaDiff wrong_property;
  TypeChange person_name;
  person_name.name = "PersonV2";
  person_name.became_mandatory.push_back("name");
  wrong_property.changed_types.push_back(person_name);
  EXPECT_FALSE(engine.ObserveEpoch(2, &wrong_property, no_metrics));

  SchemaDiff match;
  TypeChange person_age;
  person_age.name = "PersonV2";
  person_age.became_mandatory.push_back("age");
  match.changed_types.push_back(person_age);
  EXPECT_TRUE(engine.ObserveEpoch(3, &match, no_metrics));
  EXPECT_EQ(engine.States().at(0).last_detail,
            "PersonV2: age became mandatory");
}

TEST(AlertEngineTest, MetricRuleFollowsThresholdAndHistogramStats) {
  AlertEngine engine(MustParse(
      "alert deep metric test.queue > 8\n"
      "alert slow metric test.lat.p99 >= 0.5\n"));

  MetricsSnapshot calm;
  calm.gauges.emplace_back("test.queue", 3);
  HistogramSnapshot fast;
  fast.count = 10;
  fast.sum = 0.1;
  fast.min = 0.005;
  fast.max = 0.009;
  fast.bounds = {0.01, 1.0};
  fast.buckets = {10, 0, 0};
  calm.histograms.emplace_back("test.lat", fast);
  EXPECT_FALSE(engine.ObserveEpoch(1, nullptr, calm));
  EXPECT_TRUE(engine.FiringNames().empty());

  MetricsSnapshot loaded = calm;
  loaded.gauges[0].second = 9;
  loaded.histograms[0].second.buckets = {0, 10, 0};  // p99 lands in (0.01,1]
  loaded.histograms[0].second.min = 0.6;
  loaded.histograms[0].second.max = 0.9;
  EXPECT_TRUE(engine.EvaluateMetricRules(2, loaded));
  EXPECT_EQ(engine.FiringNames(),
            (std::vector<std::string>{"deep", "slow"}));
  const AlertState deep = engine.States().at(0);
  EXPECT_EQ(deep.last_detail, "test.queue = 9 (> 8)");

  // Back under threshold: resolve_after=1 resolves on the next evaluation.
  EXPECT_TRUE(engine.EvaluateMetricRules(3, calm));
  EXPECT_TRUE(engine.FiringNames().empty());

  // An unregistered metric never fires.
  AlertEngine missing(MustParse("alert ghost metric no.such.metric > 0\n"));
  EXPECT_FALSE(missing.ObserveEpoch(1, nullptr, calm));
  EXPECT_TRUE(missing.FiringNames().empty());
}

TEST(AlertEngineTest, ToJsonListsEveryRuleWithSpecAndState) {
  AlertEngine engine(MustParse("alert gone drift type_retired\n"));
  const MetricsSnapshot no_metrics;
  const SchemaDiff hit = RetireDiff("Legacy");
  engine.ObserveEpoch(5, &hit, no_metrics);

  const JsonValue body = engine.ToJson();
  EXPECT_EQ(body["firing"].AsInt(), 1);
  const auto& rules = body["rules"].AsArray();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0]["name"].AsString(), "gone");
  EXPECT_EQ(rules[0]["kind"].AsString(), "drift");
  EXPECT_EQ(rules[0]["spec"].AsString(), "alert gone drift type_retired");
  EXPECT_TRUE(rules[0]["firing"].AsBool());
  EXPECT_EQ(rules[0]["fired_epoch"].AsInt(), 5);
}

// --- Persistence across restart. ---

TEST(AlertEngineTest, StateSurvivesSerializeRestore) {
  const std::string rules_text =
      "alert gone drift type_retired resolve_after=2\n"
      "alert deep metric test.queue > 8\n";
  AlertEngine first(MustParse(rules_text));
  const MetricsSnapshot no_metrics;
  const SchemaDiff hit = RetireDiff("Legacy");
  first.ObserveEpoch(7, &hit, no_metrics);
  const std::string blob = first.SerializeState();

  // A "restarted" engine over the same rule file resumes mid-flight: still
  // firing, and the resolve clock continues from the restored match epoch.
  AlertEngine second(MustParse(rules_text));
  ASSERT_TRUE(second.RestoreState(blob).ok());
  const AlertState restored = second.States().at(0);
  EXPECT_TRUE(restored.firing);
  EXPECT_EQ(restored.fired_epoch, 7u);
  EXPECT_EQ(restored.fire_count, 1u);
  EXPECT_EQ(restored.last_detail, "node type Legacy retired");
  EXPECT_FALSE(second.ObserveEpoch(8, nullptr, no_metrics));
  EXPECT_TRUE(second.States().at(0).firing);
  EXPECT_TRUE(second.ObserveEpoch(9, nullptr, no_metrics));
  EXPECT_FALSE(second.States().at(0).firing);

  // A changed rule file tolerates stale entries: unknown rules in the blob
  // are ignored, rules without a blob entry start fresh.
  AlertEngine changed(MustParse("alert brand_new drift type_added\n"));
  ASSERT_TRUE(changed.RestoreState(blob).ok());
  EXPECT_FALSE(changed.States().at(0).firing);
  EXPECT_EQ(changed.States().at(0).fire_count, 0u);

  EXPECT_FALSE(first.RestoreState("{not json").ok());
  EXPECT_FALSE(first.RestoreState("{\"version\":1}").ok());
}

// --- Determinism over evolution scenarios across thread counts. ---

/// One engine observation per stream batch, exactly like the serving
/// daemon's writer thread: feed the batch, post-process, diff via a
/// DriftTracker, hand the epoch's diff (if any) to the engine.
std::vector<std::string> AlertTrace(const std::vector<MutationBatch>& stream,
                                    int threads, AlertEngine* engine) {
  IncrementalOptions opt;
  opt.pipeline.embedding.backend = EmbeddingBackend::kHash;
  opt.pipeline.num_threads = threads;

  PropertyGraph g;
  IncrementalDiscoverer discoverer(opt);
  drift::DriftTracker tracker;
  const MetricsSnapshot no_metrics;
  std::vector<std::string> trace;
  uint64_t epoch = 0;
  for (const MutationBatch& mb : stream) {
    auto applied = drift::ApplyMutationBatch(&g, mb);
    EXPECT_TRUE(applied.ok()) << applied.status();
    if (!applied.ok()) break;
    Status s;
    if (applied->deleted_nodes.empty() && applied->deleted_edges.empty()) {
      if (applied->batch.num_nodes() == 0 && applied->batch.num_edges() == 0) {
        continue;
      }
      s = discoverer.Feed(applied->batch);
    } else {
      s = discoverer.FeedMutations(applied->batch, applied->deleted_nodes,
                                   applied->deleted_edges);
    }
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) break;
    ++epoch;
    tracker.Observe(epoch, discoverer.FinishedCopy(g));
    const SchemaDiff* diff = nullptr;
    if (!tracker.history().empty() &&
        tracker.history().back().epoch == epoch) {
      diff = &tracker.history().back().diff;
    }
    engine->ObserveEpoch(epoch, diff, no_metrics);
    std::string line = "epoch " + std::to_string(epoch) + ":";
    for (const std::string& name : engine->FiringNames()) {
      line += " " + name;
    }
    trace.push_back(line);
  }
  return trace;
}

TEST(AlertEngineTest, EvolutionScenarioAlertsAreDeterministicAcrossThreads) {
  // One rule per drift direction the scenarios exercise (evolution.h).
  const std::string rules_text =
      "alert new_type drift type_added resolve_after=2\n"
      "alert retired drift type_retired resolve_after=2\n"
      "alert prop_gone drift removed_property\n"
      "alert tightened drift became_mandatory\n"
      "alert card drift cardinality_changed\n";

  std::map<std::string, uint64_t> fires_by_scenario;
  for (const EvolutionScenario& scenario : AllEvolutionScenarios()) {
    AlertEngine at_one(MustParse(rules_text));
    AlertEngine at_eight(MustParse(rules_text));
    const std::vector<std::string> trace_one =
        AlertTrace(scenario.stream, /*threads=*/1, &at_one);
    const std::vector<std::string> trace_eight =
        AlertTrace(scenario.stream, /*threads=*/8, &at_eight);

    // The full epoch-by-epoch firing trace is identical, not just the end
    // state — fires and resolves land on the same epochs.
    EXPECT_EQ(trace_one, trace_eight) << scenario.name;
    EXPECT_EQ(at_one.SerializeState(), at_eight.SerializeState())
        << scenario.name;

    uint64_t fires = 0;
    for (const AlertState& s : at_one.States()) fires += s.fire_count;
    fires_by_scenario[scenario.name] = fires;
    EXPECT_GT(fires, 0u) << scenario.name
                         << ": scenario produced no alertable drift";
  }

  // Spot-check the scenarios against their documented drift patterns.
  AlertEngine label_churn(MustParse(rules_text));
  auto churn = MakeEvolutionScenario("label-churn");
  ASSERT_TRUE(churn.ok()) << churn.status();
  AlertTrace(churn->stream, 1, &label_churn);
  const std::vector<AlertState> churn_states = label_churn.States();
  EXPECT_GT(churn_states.at(0).fire_count, 0u);  // new_type: cohorts appear
  EXPECT_GT(churn_states.at(1).fire_count, 0u);  // retired: cohorts retired
}

}  // namespace
}  // namespace obs
}  // namespace pghive
