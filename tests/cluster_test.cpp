// Unit tests for the clustering layer: Jaccard similarity and the
// bucket-collision union-find clusterer.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/lsh_clusterer.h"
#include "common/random.h"

namespace pghive {
namespace {

TEST(JaccardTest, BasicValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"c"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
}

TEST(JaccardTest, EmptySetsAreIdentical) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
}

TEST(JaccardTest, Symmetric) {
  std::set<std::string> a = {"x", "y", "z"};
  std::set<std::string> b = {"y", "w"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
}

TEST(ClusterTest, LabeledPredicate) {
  Cluster c;
  EXPECT_FALSE(c.labeled());
  c.labels.insert("A");
  EXPECT_TRUE(c.labeled());
  EXPECT_EQ(c.size(), 0u);
}

TEST(LshClustererTest, EmptyInput) {
  EXPECT_TRUE(ClusterByBucketKeys({}).empty());
}

TEST(LshClustererTest, NoSharedKeysNoMerging) {
  std::vector<std::vector<uint64_t>> keys = {{1, 2}, {3, 4}, {5, 6}};
  auto groups = ClusterByBucketKeys(keys);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(LshClustererTest, SharedKeyInOneTableMerges) {
  // Elements 0 and 2 share key 7 (OR rule: one table suffices).
  std::vector<std::vector<uint64_t>> keys = {{1, 7}, {3, 4}, {5, 7}};
  auto groups = ClusterByBucketKeys(keys);
  ASSERT_EQ(groups.size(), 2u);
  // Find the merged group.
  bool found = false;
  for (const auto& g : groups) {
    if (g.size() == 2) {
      EXPECT_EQ(g[0], 0u);
      EXPECT_EQ(g[1], 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LshClustererTest, TransitiveChaining) {
  // 0-1 share, 1-2 share -> all three in one cluster.
  std::vector<std::vector<uint64_t>> keys = {{10}, {10, 20}, {20}};
  auto groups = ClusterByBucketKeys(keys);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(LshClustererTest, AllIdenticalMergeIntoOne) {
  std::vector<std::vector<uint64_t>> keys(50, {42, 43, 44});
  auto groups = ClusterByBucketKeys(keys);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 50u);
}

TEST(LshClustererTest, CoversEveryElementExactlyOnce) {
  std::vector<std::vector<uint64_t>> keys;
  for (uint64_t i = 0; i < 100; ++i) keys.push_back({i % 7, 100 + i % 13});
  auto groups = ClusterByBucketKeys(keys);
  std::set<size_t> seen;
  for (const auto& g : groups) {
    for (size_t m : g) EXPECT_TRUE(seen.insert(m).second);
  }
  EXPECT_EQ(seen.size(), 100u);
}

// --- Rep-level union-find vs the seed element-level pass. ---
//
// A randomized candidate set in EncodedElements shape: `reps` signature
// groups with `tables` random bucket keys each, and a sig_of mapping that
// respects the grouping invariant (group g is first seen at the slot of
// its first member — groups are created in slot order during encoding).
struct RandomCandidates {
  std::vector<std::vector<uint64_t>> rep_keys;
  std::vector<size_t> sig_of;
  std::vector<std::vector<uint64_t>> fanned;  // per-element keys (seed path)
};

RandomCandidates MakeCandidates(uint64_t seed, size_t reps, size_t elems,
                                int tables, uint64_t key_space) {
  Rng rng(seed);
  RandomCandidates c;
  c.rep_keys.resize(reps);
  for (auto& k : c.rep_keys) {
    for (int t = 0; t < tables; ++t) {
      // Narrow key space => plenty of cross-group collisions to merge.
      k.push_back(static_cast<uint64_t>(t) * 1000 +
                  rng.UniformU32(static_cast<uint32_t>(key_space)));
    }
  }
  // Random group sizes, but every group's first member appears before any
  // member of a later group (the encoder's first-seen numbering).
  c.sig_of.reserve(elems);
  for (size_t g = 0; g < reps && c.sig_of.size() < elems; ++g) {
    c.sig_of.push_back(g);
  }
  while (c.sig_of.size() < elems) {
    c.sig_of.push_back(rng.UniformU32(static_cast<uint32_t>(reps)));
  }
  for (size_t s : c.sig_of) c.fanned.push_back(c.rep_keys[s]);
  return c;
}

TEST(LshClustererTest, RepLevelMatchesElementLevelOnRandomCandidates) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    auto c = MakeCandidates(seed, /*reps=*/40 + seed * 7,
                            /*elems=*/300, /*tables=*/6,
                            /*key_space=*/10 + seed * 3);
    auto rep_groups = ClusterGroupsByRepKeys(c.rep_keys, c.sig_of);
    auto elem_groups = ClusterByBucketKeys(c.fanned);
    EXPECT_EQ(rep_groups, elem_groups) << "seed " << seed;
  }
}

TEST(LshClustererTest, SingleKeyVariantMatchesElementLevel) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    Rng rng(seed);
    size_t reps = 50, elems = 400;
    std::vector<uint64_t> rep_key(reps);
    for (auto& k : rep_key) k = rng.UniformU32(12);  // heavy collisions
    std::vector<size_t> sig_of;
    for (size_t g = 0; g < reps; ++g) sig_of.push_back(g);
    while (sig_of.size() < elems) {
      sig_of.push_back(rng.UniformU32(static_cast<uint32_t>(reps)));
    }
    std::vector<std::vector<uint64_t>> fanned;
    for (size_t s : sig_of) fanned.push_back({rep_key[s]});
    EXPECT_EQ(ClusterGroupsByRepKey(rep_key, sig_of),
              ClusterByBucketKeys(fanned))
        << "seed " << seed;
  }
}

TEST(LshClustererTest, RepLevelEmptyAndSingleton) {
  EXPECT_TRUE(ClusterGroupsByRepKeys({}, {}).empty());
  auto groups = ClusterGroupsByRepKeys({{7, 8}}, {0, 0, 0});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace pghive
