// Unit tests for the clustering layer: Jaccard similarity and the
// bucket-collision union-find clusterer.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/lsh_clusterer.h"

namespace pghive {
namespace {

TEST(JaccardTest, BasicValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"c"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
}

TEST(JaccardTest, EmptySetsAreIdentical) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
}

TEST(JaccardTest, Symmetric) {
  std::set<std::string> a = {"x", "y", "z"};
  std::set<std::string> b = {"y", "w"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
}

TEST(ClusterTest, LabeledPredicate) {
  Cluster c;
  EXPECT_FALSE(c.labeled());
  c.labels.insert("A");
  EXPECT_TRUE(c.labeled());
  EXPECT_EQ(c.size(), 0u);
}

TEST(LshClustererTest, EmptyInput) {
  EXPECT_TRUE(ClusterByBucketKeys({}).empty());
}

TEST(LshClustererTest, NoSharedKeysNoMerging) {
  std::vector<std::vector<uint64_t>> keys = {{1, 2}, {3, 4}, {5, 6}};
  auto groups = ClusterByBucketKeys(keys);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(LshClustererTest, SharedKeyInOneTableMerges) {
  // Elements 0 and 2 share key 7 (OR rule: one table suffices).
  std::vector<std::vector<uint64_t>> keys = {{1, 7}, {3, 4}, {5, 7}};
  auto groups = ClusterByBucketKeys(keys);
  ASSERT_EQ(groups.size(), 2u);
  // Find the merged group.
  bool found = false;
  for (const auto& g : groups) {
    if (g.size() == 2) {
      EXPECT_EQ(g[0], 0u);
      EXPECT_EQ(g[1], 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LshClustererTest, TransitiveChaining) {
  // 0-1 share, 1-2 share -> all three in one cluster.
  std::vector<std::vector<uint64_t>> keys = {{10}, {10, 20}, {20}};
  auto groups = ClusterByBucketKeys(keys);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(LshClustererTest, AllIdenticalMergeIntoOne) {
  std::vector<std::vector<uint64_t>> keys(50, {42, 43, 44});
  auto groups = ClusterByBucketKeys(keys);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 50u);
}

TEST(LshClustererTest, CoversEveryElementExactlyOnce) {
  std::vector<std::vector<uint64_t>> keys;
  for (uint64_t i = 0; i < 100; ++i) keys.push_back({i % 7, 100 + i % 13});
  auto groups = ClusterByBucketKeys(keys);
  std::set<size_t> seen;
  for (const auto& g : groups) {
    for (size_t m : g) EXPECT_TRUE(seen.insert(m).second);
  }
  EXPECT_EQ(seen.size(), 100u);
}

}  // namespace
}  // namespace pghive
