// Tests for the observability layer (src/obs/): metric correctness under
// concurrency, span nesting invariants, exporter output shapes, the
// no-effect-on-results guarantee, and the structured logging modes.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "core/pipeline.h"
#include "core/schema_json.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace pghive {
namespace obs {
namespace {

/// Every test leaves the global tracer/registry the way it found it
/// (disabled, empty), so tests cannot order-depend on each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    Tracer::Global().SetEnabled(true);
    Tracer::Global().Clear();
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
    MetricsRegistry::Global().ResetAll();
  }
};

TEST_F(ObsTest, CounterIsExactUnderConcurrency) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.exact");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  ThreadPool pool(kThreads);
  ParallelFor(
      &pool, kThreads * kPerThread, [&](size_t) { c->Add(1); },
      /*grain=*/64);
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterRegistrationIsStableAndShared) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.counter.same");
  Counter* b = MetricsRegistry::Global().GetCounter("test.counter.same");
  EXPECT_EQ(a, b);
  a->Reset();
  a->Add(3);
  b->Add(4);
  EXPECT_EQ(a->Value(), 7u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  g->Set(-5);
  EXPECT_EQ(g->Value(), -5);
}

TEST_F(ObsTest, HistogramTotalsAreExactUnderConcurrency) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.histogram.exact", {1.0, 2.0, 4.0, 8.0});
  h->Reset();
  constexpr int kThreads = 8;
  constexpr size_t kPerThread = 5000;
  ThreadPool pool(kThreads);
  // Each index observes (i % 8), an integer, so the CAS-summed double is
  // exact and the expected total is computable in closed form.
  ParallelFor(
      &pool, kThreads * kPerThread,
      [&](size_t i) { h->Observe(static_cast<double>(i % 8)); },
      /*grain=*/64);
  HistogramSnapshot snap = h->Snapshot();
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(snap.count, n);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(n / 8) * (0 + 1 + 2 + 3 +
                                                           4 + 5 + 6 + 7));
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 7.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
}

TEST_F(ObsTest, HistogramQuantilesAreOrderedAndClamped) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.histogram.quantiles");
  h->Reset();
  for (int i = 0; i < 1000; ++i) h->Observe(0.001 * (i % 100));
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_LE(snap.p50(), snap.p95());
  EXPECT_LE(snap.p95(), snap.p99());
  EXPECT_GE(snap.p50(), snap.min);
  EXPECT_LE(snap.p99(), snap.max);
}

TEST_F(ObsTest, HistogramSingleValueQuantilesCollapse) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.histogram.single");
  h->Reset();
  h->Observe(0.0042);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50(), 0.0042);
  EXPECT_DOUBLE_EQ(snap.p99(), 0.0042);
}

TEST_F(ObsTest, SpansNestPerThread) {
  {
    ScopedSpan outer("test.outer");
    {
      ScopedSpan inner("test.inner");
      ScopedSpan innermost("test.innermost");
      (void)innermost;
    }
    ScopedSpan sibling("test.sibling");
    (void)sibling;
  }
  std::vector<SpanEvent> spans = Tracer::Global().CollectSpans();
  ASSERT_EQ(spans.size(), 4u);

  auto find = [&](const char* name) -> const SpanEvent& {
    for (const auto& s : spans) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "span not found: " << name;
    return spans.front();
  };
  const SpanEvent& outer = find("test.outer");
  const SpanEvent& inner = find("test.inner");
  const SpanEvent& innermost = find("test.innermost");
  const SpanEvent& sibling = find("test.sibling");

  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(innermost.parent, inner.id);
  EXPECT_EQ(innermost.depth, 2u);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_EQ(sibling.depth, 1u);

  // Containment: children start no earlier and end no later than their
  // parents.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  EXPECT_GE(innermost.start_ns, inner.start_ns);
  EXPECT_LE(innermost.start_ns + innermost.dur_ns,
            inner.start_ns + inner.dur_ns);

  // CollectSpans is sorted by (start_ns, id).
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
}

TEST_F(ObsTest, SpansFromWorkerThreadsAllSurface) {
  constexpr int kThreads = 4;
  {
    ThreadPool pool(kThreads);
    ParallelForChunks(&pool, 64, /*grain=*/8,
                      [](size_t, size_t, size_t) {
                        ScopedSpan span("test.worker");
                        (void)span;
                      });
    // The pool (and its threads) dies here; the spans must survive it.
  }
  std::vector<SpanEvent> spans = Tracer::Global().CollectSpans();
  size_t workers = 0;
  std::set<uint32_t> threads;
  for (const auto& s : spans) {
    if (s.name == "test.worker") {
      ++workers;
      threads.insert(s.thread);
    }
  }
  // ParallelForChunks wraps each chunk in a runtime.chunk span too; only
  // count ours. 64 items / grain 8 = 8 chunks.
  EXPECT_EQ(workers, 8u);
  EXPECT_GE(threads.size(), 1u);
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  Tracer::Global().SetEnabled(false);
  {
    ScopedSpan span("test.disabled");
    EXPECT_FALSE(span.recording());
    span.AddAttr("ignored", uint64_t{1});
  }
  EXPECT_EQ(Tracer::Global().SpanCount(), 0u);
}

TEST_F(ObsTest, OutSecondsMeasuresEvenWhenDisabled) {
  Tracer::Global().SetEnabled(false);
  double seconds = -1.0;
  {
    ScopedSpan span("test.timed", &seconds);
    EXPECT_FALSE(span.recording());
    // Busy-wait a hair so the duration is provably non-negative and the
    // clock advanced.
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(Tracer::Global().SpanCount(), 0u);

  // With tracing back on, the same form also records an event.
  Tracer::Global().SetEnabled(true);
  {
    ScopedSpan span("test.timed", &seconds);
    EXPECT_TRUE(span.recording());
  }
  EXPECT_EQ(Tracer::Global().SpanCount(), 1u);
}

TEST_F(ObsTest, JsonlLineIsExact) {
  JsonObject fields;
  fields.emplace("value", 42);
  EXPECT_EQ(JsonlLine("counter", "pghive.test.c", std::move(fields)),
            "{\"name\":\"pghive.test.c\",\"type\":\"counter\",\"value\":42}");
}

TEST_F(ObsTest, MetricsJsonlLinesAllParseAndCoverEveryKind) {
  MetricsRegistry::Global().GetCounter("test.export.counter")->Add(5);
  MetricsRegistry::Global().GetGauge("test.export.gauge")->Set(-2);
  MetricsRegistry::Global()
      .GetHistogram("test.export.histogram")
      ->Observe(0.001);
  {
    ScopedSpan span("test.export.span");
    span.AddAttr("k", std::string("v"));
  }
  const std::string jsonl = MetricsToJsonl(
      MetricsRegistry::Global().Snapshot(), Tracer::Global().CollectSpans());

  std::set<std::string> types;
  size_t lines = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    ++lines;
    Result<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->is_object()) << line;
    types.insert((*parsed)["type"].AsString());
    EXPECT_TRUE((*parsed)["name"].is_string()) << line;
  }
  EXPECT_GE(lines, 4u);
  EXPECT_TRUE(types.count("counter"));
  EXPECT_TRUE(types.count("gauge"));
  EXPECT_TRUE(types.count("histogram"));
  EXPECT_TRUE(types.count("span_stats"));
  EXPECT_TRUE(types.count("span"));
}

TEST_F(ObsTest, HistogramJsonlCarriesPercentiles) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("test.export.percentiles");
  for (int i = 0; i < 100; ++i) h->Observe(0.002);
  const std::string jsonl =
      MetricsToJsonl(MetricsRegistry::Global().Snapshot(), {});
  bool found = false;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(pos, end - pos);
    pos = end + 1;
    if (line.find("test.export.percentiles") == std::string::npos) continue;
    found = true;
    JsonValue v = ParseJson(line).value();
    EXPECT_EQ(v["count"].AsInt(), 100);
    for (const char* key : {"sum", "min", "max", "mean", "p50", "p95",
                            "p99"}) {
      EXPECT_TRUE(v[key].is_number()) << key;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, ChromeTraceIsAnArrayOfCompleteEvents) {
  {
    ScopedSpan outer("test.chrome.outer");
    ScopedSpan inner("test.chrome.inner");
    (void)inner;
  }
  const std::string trace =
      SpansToChromeTrace(Tracer::Global().CollectSpans());
  Result<JsonValue> parsed = ParseJson(trace);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->AsArray().size(), 2u);
  for (const JsonValue& event : parsed->AsArray()) {
    EXPECT_EQ(event["ph"].AsString(), "X");
    EXPECT_EQ(event["cat"].AsString(), "pghive");
    EXPECT_TRUE(event["name"].is_string());
    EXPECT_TRUE(event["ts"].is_number());
    EXPECT_TRUE(event["dur"].is_number());
    EXPECT_TRUE(event["pid"].is_number());
    EXPECT_TRUE(event["tid"].is_number());
  }
}

TEST_F(ObsTest, TracingDoesNotChangeDiscoveredSchema) {
  GenerateOptions gen;
  gen.num_nodes = 600;
  gen.num_edges = 1200;
  PropertyGraph g =
      GenerateGraph(DatasetSpecByName("POLE").value(), gen).value();

  // Reference: tracing off, sequential.
  SetMetricsEnabled(false);
  Tracer::Global().SetEnabled(false);
  std::string reference;
  {
    PgHivePipeline pipeline((PipelineOptions()));
    reference = SchemaToJson(pipeline.DiscoverSchema(g).value());
  }

  // Tracing on must not perturb the output at any thread count.
  SetMetricsEnabled(true);
  Tracer::Global().SetEnabled(true);
  for (int threads : {1, 2, 8}) {
    Tracer::Global().Clear();
    PipelineOptions opt;
    opt.num_threads = threads;
    PgHivePipeline pipeline(opt);
    EXPECT_EQ(SchemaToJson(pipeline.DiscoverSchema(g).value()), reference)
        << "threads=" << threads;
    EXPECT_GT(Tracer::Global().SpanCount(), 0u) << "threads=" << threads;
  }
}

TEST_F(ObsTest, PipelineSpansCoverEveryStage) {
  GenerateOptions gen;
  gen.num_nodes = 400;
  gen.num_edges = 800;
  PropertyGraph g =
      GenerateGraph(DatasetSpecByName("POLE").value(), gen).value();
  PgHivePipeline pipeline((PipelineOptions()));
  ASSERT_TRUE(pipeline.DiscoverSchema(g).ok());

  std::set<std::string> names;
  for (const auto& s : Tracer::Global().CollectSpans()) names.insert(s.name);
  for (const char* expected :
       {"pipeline.discover", "pipeline.batch", "pipeline.embed_train",
        "pipeline.encode_nodes", "pipeline.cluster_nodes",
        "pipeline.extract_nodes", "pipeline.encode_edges",
        "pipeline.cluster_edges", "pipeline.extract_edges",
        "pipeline.post_process"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }

  // The StageTimings view agrees with the spans it is fed from.
  const StageTimings& t = pipeline.last_diagnostics().timings;
  EXPECT_GT(t.encode_nodes, 0.0);
  EXPECT_GT(t.cluster_nodes, 0.0);
}

// --- Prometheus exposition (obs/export.h). ---

TEST_F(ObsTest, PrometheusExpositionIsExactForSeededSnapshot) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("pghive.serve.requests", 42u);
  snap.gauges.emplace_back("pghive.serve.queue_depth.pole", -3);
  HistogramSnapshot h;
  h.count = 6;
  h.sum = 3.5;
  h.min = 0.25;
  h.max = 2.0;
  h.bounds = {0.5, 1.0, 2.0};
  h.buckets = {1, 2, 3, 0};  // per-bucket, last = overflow
  snap.histograms.emplace_back("pghive.serve.read_seconds", h);

  EXPECT_EQ(MetricsToPrometheus(snap),
            "# TYPE pghive_serve_requests_total counter\n"
            "pghive_serve_requests_total 42\n"
            "# TYPE pghive_serve_queue_depth_pole gauge\n"
            "pghive_serve_queue_depth_pole -3\n"
            "# TYPE pghive_serve_read_seconds histogram\n"
            "pghive_serve_read_seconds_bucket{le=\"0.5\"} 1\n"
            "pghive_serve_read_seconds_bucket{le=\"1\"} 3\n"
            "pghive_serve_read_seconds_bucket{le=\"2\"} 6\n"
            "pghive_serve_read_seconds_bucket{le=\"+Inf\"} 6\n"
            "pghive_serve_read_seconds_sum 3.5\n"
            "pghive_serve_read_seconds_count 6\n");
}

TEST_F(ObsTest, PrometheusBucketsAreCumulativeForLiveHistogram) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.prom.cumulative", {0.001, 0.01, 0.1, 1.0});
  h->Reset();
  for (int i = 0; i < 500; ++i) h->Observe(0.0005 * (i % 40));
  MetricsSnapshot registry = MetricsRegistry::Global().Snapshot();
  const std::string text = MetricsToPrometheus(registry);

  // Every _bucket series must be non-decreasing in file order and end with
  // le="+Inf" equal to the histogram count.
  uint64_t prev = 0;
  uint64_t last = 0;
  size_t buckets_seen = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.find("test_prom_cumulative_bucket{") == std::string::npos) {
      continue;
    }
    const uint64_t value =
        std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
    last = value;
    ++buckets_seen;
  }
  EXPECT_EQ(buckets_seen, 5u);  // 4 bounds + +Inf
  EXPECT_EQ(last, 500u);
}

TEST_F(ObsTest, SanitizePrometheusNameMapsToLegalCharset) {
  EXPECT_EQ(SanitizePrometheusName("pghive.serve.route_seconds.drift"),
            "pghive_serve_route_seconds_drift");
  EXPECT_EQ(SanitizePrometheusName("0weird-name"), "_0weird_name");
  EXPECT_EQ(SanitizePrometheusName("a:b"), "a:b");  // colons are legal
  EXPECT_EQ(SanitizePrometheusName(""), "_");
}

TEST_F(ObsTest, ParseMetricsFormatAcceptsKnownFormats) {
  EXPECT_EQ(*ParseMetricsFormat("jsonl"), MetricsFormat::kJsonl);
  EXPECT_EQ(*ParseMetricsFormat("Prometheus"), MetricsFormat::kPrometheus);
  EXPECT_FALSE(ParseMetricsFormat("xml").ok());
}

TEST_F(ObsTest, MetricsFormatContentTypes) {
  EXPECT_STREQ(MetricsFormatContentType(MetricsFormat::kPrometheus),
               "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_STREQ(MetricsFormatContentType(MetricsFormat::kJsonl),
               "application/x-ndjson; charset=utf-8");
}

TEST_F(ObsTest, MetricNameConventionCheck) {
  EXPECT_TRUE(MetricNameFollowsConvention("pghive.serve.read_seconds"));
  EXPECT_TRUE(MetricNameFollowsConvention("pghive.alerts.firing.pole"));
  EXPECT_TRUE(MetricNameFollowsConvention("test.anything.goes"));
  EXPECT_FALSE(MetricNameFollowsConvention("pghive.bogus.metric"));
  EXPECT_FALSE(MetricNameFollowsConvention("pghive.serve"));
  EXPECT_FALSE(MetricNameFollowsConvention("pghive."));
}

TEST_F(ObsTest, EmitSpanRecordsExplicitTimestamps) {
  obs::EmitSpan("test.emitted", 1000, 250, {{"k", "v"}});
  {
    ScopedSpan parent("test.emit.parent");
    obs::EmitSpan("test.emitted.child", 2000, 50);
  }
  std::vector<SpanEvent> spans = Tracer::Global().CollectSpans();
  const SpanEvent* emitted = nullptr;
  const SpanEvent* parent = nullptr;
  const SpanEvent* child = nullptr;
  for (const auto& s : spans) {
    if (s.name == "test.emitted") emitted = &s;
    if (s.name == "test.emit.parent") parent = &s;
    if (s.name == "test.emitted.child") child = &s;
  }
  ASSERT_NE(emitted, nullptr);
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(emitted->start_ns, 1000u);
  EXPECT_EQ(emitted->dur_ns, 250u);
  EXPECT_EQ(emitted->parent, 0u);
  ASSERT_EQ(emitted->attrs.size(), 1u);
  EXPECT_EQ(emitted->attrs[0].first, "k");
  // Emitted inside an open span: parented to it, like a ScopedSpan child.
  EXPECT_EQ(child->parent, parent->id);

  // Disabled tracing: EmitSpan is a no-op.
  Tracer::Global().SetEnabled(false);
  Tracer::Global().Clear();
  obs::EmitSpan("test.emitted.off", 1, 1);
  EXPECT_EQ(Tracer::Global().SpanCount(), 0u);
}

// --- Structured logging (common/logging.h). ---

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogFormat(LogFormat::kText);
    SetLogLevel(LogLevel::kWarning);
  }
};

TEST_F(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kWarning);  // untouched on failure
}

TEST_F(LoggingTest, SinkReceivesFilteredRecords) {
  std::vector<std::string> messages;
  SetLogSink([&](LogLevel level, const char* file, int line,
                 const std::string& msg) {
    messages.push_back(std::string(LogLevelName(level)) + " " + file + ":" +
                       std::to_string(line) + " " + msg);
  });
  SetLogLevel(LogLevel::kInfo);
  PGHIVE_LOG(kDebug) << "filtered out";
  PGHIVE_LOG(kInfo) << "kept " << 42;
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_NE(messages[0].find("INFO"), std::string::npos);
  EXPECT_NE(messages[0].find("obs_test.cpp"), std::string::npos);
  EXPECT_NE(messages[0].find("kept 42"), std::string::npos);
}

TEST_F(LoggingTest, JsonFormatIsValidJson) {
  const std::string record = FormatLogRecord(
      LogFormat::kJson, LogLevel::kError, "file.cc", 12, "broke: \"x\"\n");
  Result<JsonValue> parsed = ParseJson(record);
  ASSERT_TRUE(parsed.ok()) << record;
  EXPECT_EQ((*parsed)["level"].AsString(), "ERROR");
  EXPECT_EQ((*parsed)["file"].AsString(), "file.cc");
  EXPECT_EQ((*parsed)["line"].AsInt(), 12);
  EXPECT_EQ((*parsed)["msg"].AsString(), "broke: \"x\"\n");
}

TEST_F(LoggingTest, TextFormatMatchesLegacyShape) {
  EXPECT_EQ(FormatLogRecord(LogFormat::kText, LogLevel::kWarning, "f.cc", 7,
                            "msg"),
            "[WARN f.cc:7] msg");
}

}  // namespace
}  // namespace obs
}  // namespace pghive
