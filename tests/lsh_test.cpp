// Unit tests for the LSH substrate: ELSH, MinHash, the collision-probability
// model and the adaptive parameter heuristics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "lsh/adaptive_params.h"
#include "lsh/collision_model.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash_lsh.h"
#include "simd/aligned.h"
#include "simd/kernels.h"
#include "simd/simd.h"

namespace pghive {
namespace {

// ---------- ELSH ----------

TEST(EuclideanLshTest, RejectsBadParameters) {
  EuclideanLshOptions opt;
  EXPECT_FALSE(EuclideanLsh::Create(0, opt).ok());
  opt.bucket_length = -1;
  EXPECT_FALSE(EuclideanLsh::Create(4, opt).ok());
  opt.bucket_length = 1;
  opt.num_tables = 0;
  EXPECT_FALSE(EuclideanLsh::Create(4, opt).ok());
  opt.num_tables = 3;
  opt.hashes_per_table = 0;
  EXPECT_FALSE(EuclideanLsh::Create(4, opt).ok());
}

TEST(EuclideanLshTest, HashShapeAndDeterminism) {
  EuclideanLshOptions opt;
  opt.num_tables = 7;
  auto lsh = EuclideanLsh::Create(4, opt);
  ASSERT_TRUE(lsh.ok());
  std::vector<float> x = {0.1f, 0.2f, 0.3f, 0.4f};
  auto k1 = lsh->Hash(x);
  auto k2 = lsh->Hash(x);
  EXPECT_EQ(k1.size(), 7u);
  EXPECT_EQ(k1, k2);
}

TEST(EuclideanLshTest, IdenticalVectorsAlwaysCollideEverywhere) {
  auto lsh = EuclideanLsh::Create(8, {});
  ASSERT_TRUE(lsh.ok());
  std::vector<float> x(8, 0.25f);
  EXPECT_EQ(lsh->Hash(x), lsh->Hash(std::vector<float>(8, 0.25f)));
}

TEST(EuclideanLshTest, CollisionRateDecreasesWithDistance) {
  // Empirical check of the locality property: near pairs collide in more
  // tables than far pairs.
  EuclideanLshOptions opt;
  opt.bucket_length = 1.0;
  opt.num_tables = 64;
  opt.hashes_per_table = 1;
  opt.seed = 3;
  auto lsh = EuclideanLsh::Create(16, opt);
  ASSERT_TRUE(lsh.ok());

  Rng rng(77);
  auto collide_count = [&](double distance) {
    int total = 0;
    for (int trial = 0; trial < 40; ++trial) {
      std::vector<float> a(16), b(16);
      // b = a + distance * unit direction
      std::vector<double> dir(16);
      double n = 0;
      for (auto& d : dir) {
        d = rng.Normal();
        n += d * d;
      }
      n = std::sqrt(n);
      for (int i = 0; i < 16; ++i) {
        a[i] = static_cast<float>(rng.Normal());
        b[i] = a[i] + static_cast<float>(distance * dir[i] / n);
      }
      auto ka = lsh->Hash(a);
      auto kb = lsh->Hash(b);
      for (size_t t = 0; t < ka.size(); ++t) total += ka[t] == kb[t];
    }
    return total;
  };
  int near = collide_count(0.2);
  int mid = collide_count(1.0);
  int far = collide_count(5.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
}

TEST(EuclideanLshTest, DifferentTablesDifferentKeys) {
  // Keys encode the table index, so even a zero vector gets distinct keys
  // per table.
  auto lsh = EuclideanLsh::Create(4, {});
  ASSERT_TRUE(lsh.ok());
  auto keys = lsh->Hash(std::vector<float>(4, 0.0f));
  std::set<uint64_t> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
}

// ---------- MinHash ----------

TEST(MinHashTest, RejectsBadParameters) {
  MinHashLshOptions opt;
  opt.num_hashes = 0;
  EXPECT_FALSE(MinHashLsh::Create(opt).ok());
  opt.num_hashes = 10;
  opt.rows_per_band = 3;  // not divisible
  EXPECT_FALSE(MinHashLsh::Create(opt).ok());
}

TEST(MinHashTest, SignatureDeterministicAndOrderInvariant) {
  auto lsh = MinHashLsh::Create({});
  ASSERT_TRUE(lsh.ok());
  auto s1 = lsh->Signature({"a", "b", "c"});
  auto s2 = lsh->Signature({"c", "a", "b"});
  EXPECT_EQ(s1, s2);
}

TEST(MinHashTest, IdenticalSetsIdenticalSignatures) {
  auto lsh = MinHashLsh::Create({});
  ASSERT_TRUE(lsh.ok());
  EXPECT_EQ(lsh->Signature({"x", "y"}), lsh->Signature({"x", "y"}));
  EXPECT_EQ(lsh->SignatureKey(lsh->Signature({"x", "y"})),
            lsh->SignatureKey(lsh->Signature({"y", "x"})));
}

TEST(MinHashTest, EmptySetSentinel) {
  auto lsh = MinHashLsh::Create({});
  ASSERT_TRUE(lsh.ok());
  auto empty1 = lsh->Signature({});
  auto empty2 = lsh->Signature({});
  auto nonempty = lsh->Signature({"a"});
  EXPECT_EQ(empty1, empty2);
  EXPECT_NE(empty1, nonempty);
}

TEST(MinHashTest, AgreementEstimatesJaccard) {
  MinHashLshOptions opt;
  opt.num_hashes = 512;  // long signature -> tight estimate
  auto lsh = MinHashLsh::Create(opt);
  ASSERT_TRUE(lsh.ok());
  // |A ∩ B| = 2, |A ∪ B| = 4 -> J = 0.5
  auto sa = lsh->Signature({"a", "b", "c"});
  auto sb = lsh->Signature({"b", "c", "d"});
  EXPECT_NEAR(MinHashLsh::SignatureAgreement(sa, sb), 0.5, 0.1);
  // Disjoint sets -> ~0.
  auto sc = lsh->Signature({"x", "y", "z"});
  EXPECT_LT(MinHashLsh::SignatureAgreement(sa, sc), 0.05);
}

TEST(MinHashTest, BandKeysShape) {
  MinHashLshOptions opt;
  opt.num_hashes = 12;
  opt.rows_per_band = 4;
  auto lsh = MinHashLsh::Create(opt);
  ASSERT_TRUE(lsh.ok());
  EXPECT_EQ(lsh->num_bands(), 3);
  auto keys = lsh->BandKeys(lsh->Signature({"a"}));
  EXPECT_EQ(keys.size(), 3u);
}

TEST(MinHashTest, AgreementDegenerateInputs) {
  EXPECT_EQ(MinHashLsh::SignatureAgreement({}, {}), 0.0);
  EXPECT_EQ(MinHashLsh::SignatureAgreement({1}, {1, 2}), 0.0);
}

// ---------- collision model ----------

TEST(CollisionModelTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(CollisionModelTest, ElshProbabilityBoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(ElshCollisionProbability(0.0, 1.0), 1.0);
  double prev = 1.0;
  for (double d = 0.1; d < 10.0; d += 0.1) {
    double p = ElshCollisionProbability(d, 1.0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, prev + 1e-12);  // decreasing in distance
    prev = p;
  }
}

TEST(CollisionModelTest, ElshProbabilityIncreasesWithBucket) {
  double narrow = ElshCollisionProbability(1.0, 0.5);
  double wide = ElshCollisionProbability(1.0, 4.0);
  EXPECT_LT(narrow, wide);
}

TEST(CollisionModelTest, AmplificationMonotoneInTables) {
  double p = 0.3;
  double p1 = AmplifiedProbability(p, 2, 1);
  double p10 = AmplifiedProbability(p, 2, 10);
  double p50 = AmplifiedProbability(p, 2, 50);
  EXPECT_LT(p1, p10);
  EXPECT_LT(p10, p50);
  EXPECT_LE(p50, 1.0);
}

TEST(CollisionModelTest, AmplificationMonotoneDecreasingInHashes) {
  double p = 0.5;
  EXPECT_GT(AmplifiedProbability(p, 1, 5), AmplifiedProbability(p, 4, 5));
}

TEST(CollisionModelTest, MinHashBandProbability) {
  EXPECT_DOUBLE_EQ(MinHashBandProbability(0.0, 2, 10), 0.0);
  EXPECT_DOUBLE_EQ(MinHashBandProbability(1.0, 2, 10), 1.0);
  // S-curve: steeper with more rows per band.
  EXPECT_GT(MinHashBandProbability(0.8, 2, 10),
            MinHashBandProbability(0.8, 8, 10) - 1e-12);
}

// ---------- adaptive parameters ----------

TEST(AdaptiveParamsTest, AlphaBrackets) {
  EXPECT_DOUBLE_EQ(AlphaForLabelCount(0), 0.8);
  EXPECT_DOUBLE_EQ(AlphaForLabelCount(3), 0.8);
  EXPECT_DOUBLE_EQ(AlphaForLabelCount(4), 1.0);
  EXPECT_DOUBLE_EQ(AlphaForLabelCount(10), 1.0);
  EXPECT_DOUBLE_EQ(AlphaForLabelCount(11), 1.5);
}

TEST(AdaptiveParamsTest, SampleMeanDistanceOfKnownPoints) {
  // Two clusters at distance ~10: the mean pairwise distance is positive
  // and bounded by the diameter.
  std::vector<std::vector<float>> vectors;
  for (int i = 0; i < 50; ++i) vectors.push_back({0.0f, 0.0f});
  for (int i = 0; i < 50; ++i) vectors.push_back({10.0f, 0.0f});
  double mu = SampleMeanDistance(vectors, 42);
  EXPECT_GT(mu, 2.0);
  EXPECT_LT(mu, 10.5);
}

TEST(AdaptiveParamsTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(SampleMeanDistance({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(SampleMeanDistance({{1.0f}}, 1), 0.0);
}

TEST(AdaptiveParamsTest, BucketScalesWithMu) {
  DataProfile p;
  p.num_elements = 10000;
  p.num_distinct_labels = 5;
  p.mean_pairwise_distance = 2.0;
  auto small = ComputeAdaptiveParams(p, ElementKind::kNode);
  p.mean_pairwise_distance = 4.0;
  auto large = ComputeAdaptiveParams(p, ElementKind::kNode);
  EXPECT_LT(small.bucket_length, large.bucket_length);
  EXPECT_NEAR(large.bucket_length / small.bucket_length, 2.0, 1e-9);
}

TEST(AdaptiveParamsTest, TablesClampedToPracticalRange) {
  DataProfile p;
  p.num_elements = 100;
  p.num_distinct_labels = 2;
  p.mean_pairwise_distance = 0.01;
  auto params = ComputeAdaptiveParams(p, ElementKind::kNode);
  EXPECT_GE(params.num_tables, 5);
  EXPECT_LE(params.num_tables, 35);

  p.num_elements = 100000000;
  p.mean_pairwise_distance = 100.0;
  params = ComputeAdaptiveParams(p, ElementKind::kEdge);
  EXPECT_GE(params.num_tables, 5);
  EXPECT_LE(params.num_tables, 35);
}

TEST(AdaptiveParamsTest, ZeroMuFallsBackToUnit) {
  DataProfile p;
  p.num_elements = 10;
  p.mean_pairwise_distance = 0.0;  // all-identical vectors
  auto params = ComputeAdaptiveParams(p, ElementKind::kNode);
  EXPECT_GT(params.bucket_length, 0.0);
}

TEST(AdaptiveParamsTest, AlphaCapsApply) {
  DataProfile p;
  p.num_elements = 10000;
  p.num_distinct_labels = 50;  // would give alpha = 1.5
  p.mean_pairwise_distance = 1.0;
  AdaptiveTuning tuning;
  tuning.node_alpha_cap = 1.0;
  tuning.edge_alpha_cap = 0.9;
  auto node = ComputeAdaptiveParams(p, ElementKind::kNode, tuning);
  auto edge = ComputeAdaptiveParams(p, ElementKind::kEdge, tuning);
  EXPECT_DOUBLE_EQ(node.alpha, 1.0);
  EXPECT_DOUBLE_EQ(edge.alpha, 0.9);
}

TEST(AdaptiveParamsTest, OptionConversion) {
  AdaptiveLshParams params;
  params.bucket_length = 2.5;
  params.num_tables = 17;
  auto elsh = ToElshOptions(params, 99);
  EXPECT_DOUBLE_EQ(elsh.bucket_length, 2.5);
  EXPECT_EQ(elsh.num_tables, 17);
  EXPECT_EQ(elsh.seed, 99u);
  auto mh = ToMinHashOptions(params, 99);
  EXPECT_EQ(mh.num_hashes % mh.rows_per_band, 0);
  EXPECT_EQ(mh.num_hashes, 17 * mh.rows_per_band);
}

// ---------- SIMD kernels (bit-identity contract of simd/kernels.h) ----------

TEST(SimdKernelTest, DotProductScalarMatchesAvx2Bitwise) {
#if defined(PGHIVE_SIMD_X86)
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  Rng rng(21);
  for (size_t cols : {1u, 7u, 8u, 9u, 48u, 200u}) {
    simd::AlignedRowMatrix m(2, cols);
    for (int trial = 0; trial < 50; ++trial) {
      for (size_t r = 0; r < 2; ++r) {
        for (size_t d = 0; d < cols; ++d) {
          m.row(r)[d] = static_cast<float>(rng.Normal(0, 10));
        }
      }
      const double scalar =
          simd::DotProductScalar(m.row(0), m.row(1), m.stride());
      const double avx2 = simd::DotProductAvx2(m.row(0), m.row(1), m.stride());
      // Bitwise, not approximate: the flavours run the same IEEE op order.
      EXPECT_EQ(std::memcmp(&scalar, &avx2, sizeof scalar), 0)
          << "cols=" << cols << " scalar=" << scalar << " avx2=" << avx2;
    }
  }
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

TEST(SimdKernelTest, MinHashFoldScalarMatchesAvx2) {
#if defined(PGHIVE_SIMD_X86)
  if (!simd::Avx2Available()) GTEST_SKIP() << "host lacks AVX2";
  Rng rng(22);
  for (size_t num_salts : {1u, 3u, 4u, 5u, 64u, 130u}) {
    std::vector<uint64_t> salts(num_salts);
    for (auto& s : salts) s = rng.NextU64();
    for (size_t num_tokens : {0u, 1u, 17u}) {
      std::vector<uint64_t> hashes(num_tokens);
      for (auto& h : hashes) h = rng.NextU64();
      std::vector<uint64_t> a(num_salts), b(num_salts);
      simd::MinHashFoldScalar(hashes.data(), num_tokens, salts.data(),
                              num_salts, a.data());
      simd::MinHashFoldAvx2(hashes.data(), num_tokens, salts.data(),
                            num_salts, b.data());
      EXPECT_EQ(a, b) << "salts=" << num_salts << " tokens=" << num_tokens;
      if (num_tokens == 0) {
        for (uint64_t v : a) EXPECT_EQ(v, UINT64_MAX);
      }
    }
  }
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

TEST(SimdKernelTest, DispatchHonorsForceMode) {
  simd::ForceMode(simd::Mode::kScalar);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_STREQ(simd::ModeName(), "scalar");
#if defined(PGHIVE_SIMD_X86)
  if (simd::Avx2Available()) {
    simd::ForceMode(simd::Mode::kAvx2);
    EXPECT_TRUE(simd::Enabled());
    EXPECT_STREQ(simd::ModeName(), "avx2");
  }
#endif
  simd::ForceMode(simd::Mode::kAuto);
}

TEST(SimdKernelTest, HashMatchesHashRowOnPaddedRow) {
  // The vector<float> convenience API (scratch copy) and the aligned
  // hot-path row must agree — and must agree across SIMD modes.
  Rng rng(23);
  const size_t dim = 13;  // deliberately not a multiple of the stride
  EuclideanLshOptions opt;
  opt.num_tables = 6;
  auto lsh = EuclideanLsh::Create(dim, opt).value();
  std::vector<float> x(dim);
  for (auto& v : x) v = static_cast<float>(rng.Normal());
  simd::AlignedRowMatrix m(1, dim);
  std::copy(x.begin(), x.end(), m.row(0));

  simd::ForceMode(simd::Mode::kScalar);
  const std::vector<uint64_t> scalar_keys = lsh.Hash(x);
  simd::ForceMode(simd::Mode::kAuto);
  std::vector<uint64_t> row_keys(static_cast<size_t>(lsh.num_tables()));
  lsh.HashRow(m.row(0), row_keys.data());
  EXPECT_EQ(scalar_keys, row_keys);
}

TEST(SimdKernelTest, SignatureMatchesSignatureFromHashes) {
  auto lsh = MinHashLsh::Create({}).value();
  const std::vector<std::string> tokens = {"prop:a", "prop:b", "label:C"};
  std::vector<uint64_t> hashes;
  for (const auto& t : tokens) hashes.push_back(HashString(t));

  simd::ForceMode(simd::Mode::kScalar);
  const std::vector<uint64_t> from_tokens = lsh.Signature(tokens);
  simd::ForceMode(simd::Mode::kAuto);
  std::vector<uint64_t> from_hashes(
      static_cast<size_t>(lsh.options().num_hashes));
  lsh.SignatureFromHashes(hashes.data(), hashes.size(), from_hashes.data());
  EXPECT_EQ(from_tokens, from_hashes);
}

}  // namespace
}  // namespace pghive
