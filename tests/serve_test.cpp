// The schema-serving subsystem (src/serve/): HTTP framing, the JSON batch
// wire format, epoch-snapshot publication under concurrent readers (the
// TSan target), backpressure, the state-directory LOCK, graceful drain, and
// the end-to-end guarantee that a daemon-served schema is byte-identical to
// a one-shot durable run over the same batches.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/json.h"
#include "core/schema_json.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "drift/drift_tracker.h"
#include "graph/mutations.h"
#include "serve/graph_host.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "store/state_store.h"

namespace pghive {
namespace serve {
namespace {

PropertyGraph MakeTestGraph(size_t nodes = 240, size_t edges = 480) {
  auto spec = DatasetSpecByName("POLE").value();
  GenerateOptions gen;
  gen.num_nodes = nodes;
  gen.num_edges = edges;
  gen.seed = 99;
  return GenerateGraph(spec, gen).value();
}

store::StoreOptions FastStoreOptions() {
  store::StoreOptions opt;
  opt.incremental.pipeline.embedding.backend = EmbeddingBackend::kHash;
  opt.fsync = false;
  return opt;
}

GraphHostOptions FastHostOptions() {
  GraphHostOptions opt;
  opt.store = FastStoreOptions();
  return opt;
}

std::string TestDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/pghive_serve_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The post-processed schema JSON a sequential durable run shows after each
/// batch prefix — the golden set every served epoch must come from.
std::vector<std::string> GoldenEpochSchemas(
    const std::vector<store::BatchPayload>& payloads, const std::string& dir) {
  auto store =
      store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions()).value();
  std::vector<std::string> golden;
  golden.push_back(SchemaToJson(store->PostProcessedSchema()));  // epoch 0
  for (const auto& payload : payloads) {
    EXPECT_TRUE(store->Feed(payload).ok());
    golden.push_back(SchemaToJson(store->PostProcessedSchema()));
  }
  return golden;
}

// --- HTTP framing. ---

TEST(ServeHttpTest, SplitTargetDecodesQueries) {
  std::string path;
  std::map<std::string, std::string> query;
  SplitTarget("/v1/graphs/g/schema?epoch=3&name=a%20b+c", &path, &query);
  EXPECT_EQ(path, "/v1/graphs/g/schema");
  EXPECT_EQ(query["epoch"], "3");
  EXPECT_EQ(query["name"], "a b c");

  SplitTarget("/healthz", &path, &query);
  EXPECT_EQ(path, "/healthz");
  EXPECT_TRUE(query.empty());
}

TEST(ServeHttpTest, KeepAliveRoundTripOverLoopback) {
  uint16_t port = 0;
  auto listen_fd = ListenTcp("127.0.0.1", 0, &port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status();
  ASSERT_GT(port, 0);

  Result<HttpRequest> first = Status::Internal("not read");
  Result<HttpRequest> second = Status::Internal("not read");
  std::thread server([&] {
    const int fd = ::accept(*listen_fd, nullptr, nullptr);
    HttpConnection conn(fd);
    first = conn.ReadRequest(1 << 20);
    if (!first.ok()) return;
    HttpResponse resp;
    resp.status = 200;
    resp.headers["content-type"] = "text/plain";
    resp.body = "pong";
    conn.WriteResponse(resp, /*close_connection=*/false);
    second = conn.ReadRequest(1 << 20);  // same connection, kept alive
    if (!second.ok()) return;
    resp.status = 202;
    resp.body = "done";
    conn.WriteResponse(resp, /*close_connection=*/true);
  });

  auto dial = DialTcp("127.0.0.1", port);
  ASSERT_TRUE(dial.ok()) << dial.status();
  HttpConnection client(*dial);
  ASSERT_TRUE(
      client.WriteRequest("GET", "/ping?x=1", "", "").ok());
  auto resp1 = client.ReadResponse(1 << 20);
  ASSERT_TRUE(resp1.ok()) << resp1.status();
  EXPECT_EQ(resp1->status, 200);
  EXPECT_EQ(resp1->body, "pong");
  EXPECT_EQ(resp1->headers["content-type"], "text/plain");

  ASSERT_TRUE(client.WriteRequest("POST", "/data", "{\"a\":1}",
                                  "application/json")
                  .ok());
  auto resp2 = client.ReadResponse(1 << 20);
  ASSERT_TRUE(resp2.ok()) << resp2.status();
  EXPECT_EQ(resp2->status, 202);
  EXPECT_EQ(resp2->body, "done");

  server.join();
  ::close(*listen_fd);

  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->method, "GET");
  EXPECT_EQ(first->path, "/ping");
  EXPECT_EQ(first->query.at("x"), "1");
  EXPECT_EQ(first->body, "");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->method, "POST");
  EXPECT_EQ(second->body, "{\"a\":1}");
  EXPECT_EQ(second->headers.at("content-type"), "application/json");
}

// --- JSON batch wire format. ---

TEST(ServeWireTest, TypedValuesRoundTripExactly) {
  const std::vector<Value> values = {
      Value::Int(-9007199254740993ll),  // beyond double's exact-int range
      Value::Double(0.1),
      Value::Double(1.0 / 3.0),
      Value::Bool(true),
      Value::Date("2024-02-29"),
      Value::Timestamp("2024-02-29T12:34:56Z"),
      Value::String("hello \"world\"\n"),
  };
  for (const Value& v : values) {
    const JsonValue j = ValueToJson(v);
    // Through a serialize/parse cycle, as over the wire.
    auto reparsed = ParseJson(j.Dump());
    ASSERT_TRUE(reparsed.ok());
    auto round = ValueFromJson(*reparsed);
    ASSERT_TRUE(round.ok()) << round.status();
    EXPECT_EQ(round->type(), v.type());
    EXPECT_EQ(round->ToText(), v.ToText());
  }
}

TEST(ServeWireTest, PlainJsonScalarsAreTyped) {
  auto parsed = ParseJson(
      R"({"i": 42, "d": 1.5, "b": false, "s": "plain", "n": null})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ValueFromJson((*parsed)["i"])->type(), DataType::kInt);
  EXPECT_EQ(ValueFromJson((*parsed)["d"])->type(), DataType::kDouble);
  EXPECT_EQ(ValueFromJson((*parsed)["b"])->type(), DataType::kBool);
  EXPECT_EQ(ValueFromJson((*parsed)["s"])->type(), DataType::kString);
  EXPECT_FALSE(ValueFromJson(JsonValue(JsonArray{})).ok());
}

TEST(ServeWireTest, BatchRoundTripsThroughJson) {
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 3);
  for (const auto& payload : payloads) {
    const std::string wire = BatchToJson(payload).Dump();
    auto parsed = ParseJson(wire);
    ASSERT_TRUE(parsed.ok());
    auto decoded = BatchFromJson(*parsed);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->nodes.size(), payload.nodes.size());
    ASSERT_EQ(decoded->edges.size(), payload.edges.size());
    // Re-encoding must reproduce the exact wire bytes: the decoded batch is
    // semantically identical, element by element.
    EXPECT_EQ(BatchToJson(*decoded).Dump(), wire);
  }
}

TEST(ServeWireTest, MalformedBatchesAreRejected) {
  const auto bad = {
      std::string(R"([1,2,3])"),                         // not an object
      std::string(R"({"nodes": 5})"),                    // nodes not array
      std::string(R"({"nodes": [{"labels": "X"}]})"),    // labels not array
      std::string(R"({"edges": [{"source": 0}]})"),      // missing target
      std::string(R"({"edges": [{"source": -1, "target": 0}]})"),
  };
  for (const std::string& body : bad) {
    auto parsed = ParseJson(body);
    ASSERT_TRUE(parsed.ok()) << body;
    EXPECT_FALSE(BatchFromJson(*parsed).ok()) << body;
  }
}

// --- Epoch snapshots under concurrent readers (the TSan target). ---

TEST(ServeEpochTest, ConcurrentReadersOnlySeeBatchBoundarySchemas) {
  constexpr size_t kBatches = 32;
  constexpr int kReaders = 8;
  const PropertyGraph g = MakeTestGraph();
  const auto payloads = store::MakeStreamBatches(g, kBatches);
  ASSERT_EQ(payloads.size(), kBatches);
  const std::vector<std::string> golden =
      GoldenEpochSchemas(payloads, TestDir("epoch_golden"));

  GraphHostOptions options = FastHostOptions();
  options.retain_epochs = kBatches + 1;  // every epoch stays addressable
  auto host = GraphHost::Open("g", TestDir("epoch_host"), options);
  ASSERT_TRUE(host.ok()) << host.status();

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> epoch_regressions{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::shared_ptr<const EpochSnapshot> snap = (*host)->Current();
        // Epochs are monotone per reader: a published pointer never goes
        // backwards.
        if (snap->epoch < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = snap->epoch;
        // Every observed schema is exactly the golden one of its epoch —
        // never a torn intermediate.
        if (snap->epoch >= golden.size() ||
            snap->schema_json != golden[snap->epoch]) {
          mismatches.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
  }

  // Feed while the readers hammer. The default queue (64) never fills for
  // 32 batches, so every submission is admitted.
  for (const auto& payload : payloads) {
    const auto submitted = (*host)->Submit(payload);
    ASSERT_EQ(submitted.admission, GraphHost::Admission::kAccepted);
  }
  while ((*host)->Current()->epoch < kBatches) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(epoch_regressions.load(), 0);
  EXPECT_EQ((*host)->Current()->epoch, kBatches);
  EXPECT_EQ((*host)->Current()->schema_json, golden[kBatches]);
  // Retained epochs resolve to their exact golden snapshot.
  for (uint64_t e = 0; e <= kBatches; ++e) {
    const auto snap = (*host)->AtEpoch(e);
    ASSERT_NE(snap, nullptr) << "epoch " << e;
    EXPECT_EQ(snap->schema_json, golden[e]);
  }
  EXPECT_TRUE((*host)->Drain().ok());
}

TEST(ServeEpochTest, RetentionEvictsOldEpochs) {
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 6);
  GraphHostOptions options = FastHostOptions();
  options.retain_epochs = 2;
  auto host = GraphHost::Open("g", TestDir("retention"), options);
  ASSERT_TRUE(host.ok()) << host.status();
  for (const auto& payload : payloads) {
    ASSERT_EQ((*host)->Submit(payload).admission,
              GraphHost::Admission::kAccepted);
  }
  ASSERT_TRUE((*host)->Drain().ok());
  EXPECT_EQ((*host)->Current()->epoch, 6u);
  EXPECT_NE((*host)->AtEpoch(6), nullptr);
  EXPECT_NE((*host)->AtEpoch(4), nullptr);
  EXPECT_EQ((*host)->AtEpoch(3), nullptr);  // evicted
  EXPECT_EQ((*host)->AtEpoch(0), nullptr);
}

// --- Backpressure. ---

TEST(ServeBackpressureTest, FullQueueRejectsUntilWriterCatchesUp) {
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 4);
  GraphHostOptions options = FastHostOptions();
  options.queue_capacity = 1;
  auto host = GraphHost::Open("g", TestDir("backpressure"), options);
  ASSERT_TRUE(host.ok()) << host.status();

  (*host)->PauseWriterForTest(true);
  EXPECT_EQ((*host)->Submit(payloads[0]).admission,
            GraphHost::Admission::kAccepted);
  const auto rejected = (*host)->Submit(payloads[1]);
  EXPECT_EQ(rejected.admission, GraphHost::Admission::kQueueFull);
  EXPECT_EQ(rejected.queue_depth, 1u);

  (*host)->PauseWriterForTest(false);
  // The writer drains; the rejected batch is eventually admitted on retry.
  for (;;) {
    const auto retried = (*host)->Submit(payloads[1]);
    if (retried.admission == GraphHost::Admission::kAccepted) break;
    ASSERT_EQ(retried.admission, GraphHost::Admission::kQueueFull);
    std::this_thread::yield();
  }
  ASSERT_TRUE((*host)->Drain().ok());
  EXPECT_EQ((*host)->Current()->epoch, 2u);
}

// --- Graceful drain. ---

TEST(ServeDrainTest, DrainAppliesBacklogAndCheckpoints) {
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 5);
  const std::string dir = TestDir("drain");
  {
    auto host = GraphHost::Open("g", dir, FastHostOptions());
    ASSERT_TRUE(host.ok()) << host.status();
    (*host)->PauseWriterForTest(true);  // force a real backlog
    for (const auto& payload : payloads) {
      ASSERT_EQ((*host)->Submit(payload).admission,
                GraphHost::Admission::kAccepted);
    }
    ASSERT_TRUE((*host)->Drain().ok());
    // Everything admitted was applied before the writer stopped...
    EXPECT_EQ((*host)->Current()->epoch, 5u);
    EXPECT_EQ((*host)->queue_depth(), 0u);
    // ...and a post-drain submission is refused, not silently dropped.
    EXPECT_EQ((*host)->Submit(payloads[0]).admission,
              GraphHost::Admission::kStopping);
  }
  // The drain checkpointed: restart recovers all 5 batches without replay.
  EXPECT_FALSE(store::ListSnapshotFiles(dir).empty());
  store::RecoveryReport report;
  auto store = store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions(),
                                                       &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->batches_applied(), 5u);
  EXPECT_EQ(report.replayed_batches, 0u);
}

// --- State-directory LOCK. ---

TEST(ServeLockTest, SecondOpenerIsRefusedWhileLockIsHeld) {
  const std::string dir = TestDir("lock");
  auto first = store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
  ASSERT_TRUE(first.ok()) << first.status();
  auto second =
      store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  EXPECT_NE(second.status().message().find("LOCK"), std::string::npos);

  // Releasing (destroying) the holder frees the directory.
  first = Status::Internal("released");
  auto third = store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
  EXPECT_TRUE(third.ok()) << third.status();
}

TEST(ServeLockTest, StaleLockOfDeadProcessIsBroken) {
  const std::string dir = TestDir("stale_lock");
  std::filesystem::create_directories(dir);
  // No live process has this pid (pid_max is far below it).
  ASSERT_TRUE(WriteFile(dir + "/LOCK", "999999999\n").ok());
  auto opened = store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
  EXPECT_TRUE(opened.ok()) << opened.status();
}

// --- End-to-end over loopback HTTP. ---

class ServeEndToEndTest : public ::testing::Test {
 protected:
  void StartServer(GraphHostOptions host_options) {
    ServeOptions options;
    options.port = 0;
    options.num_workers = 4;
    options.graph = std::move(host_options);
    server_ = std::make_unique<SchemaServer>(options);
    ASSERT_TRUE(server_->AddGraph("g", TestDir("e2e_state")).ok());
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
  }

  Result<HttpResponse> Get(const std::string& target) {
    return HttpCall("127.0.0.1", port_, "GET", target);
  }
  Result<HttpResponse> Post(const std::string& target,
                            const std::string& body) {
    return HttpCall("127.0.0.1", port_, "POST", target, body,
                    "application/json");
  }

  /// Variant with full ServeOptions control and a caller-owned state dir
  /// (NOT wiped — restart tests reuse it).
  void StartServerAt(ServeOptions options, const std::string& state_dir) {
    options.port = 0;
    server_ = std::make_unique<SchemaServer>(std::move(options));
    ASSERT_TRUE(server_->AddGraph("g", state_dir).ok());
    ASSERT_TRUE(server_->Start().ok());
    port_ = server_->port();
  }

  std::unique_ptr<SchemaServer> server_;
  uint16_t port_ = 0;
};

TEST_F(ServeEndToEndTest, IngestedSchemaIsByteIdenticalToOneShot) {
  constexpr size_t kBatches = 6;
  const PropertyGraph g = MakeTestGraph();
  const auto payloads = store::MakeStreamBatches(g, kBatches);
  const std::vector<std::string> golden =
      GoldenEpochSchemas(payloads, TestDir("e2e_golden"));

  StartServer(FastHostOptions());

  auto health = Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);

  for (const auto& payload : payloads) {
    auto resp = Post("/v1/graphs/g/batches", BatchToJson(payload).Dump());
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->status, 202) << resp->body;
  }
  // Poll until the writer applied everything.
  for (;;) {
    auto detail = Get("/v1/graphs/g");
    ASSERT_TRUE(detail.ok()) << detail.status();
    ASSERT_EQ(detail->status, 200);
    auto doc = ParseJson(detail->body);
    ASSERT_TRUE(doc.ok());
    if (static_cast<size_t>(doc->GetInt("epoch").value()) == kBatches) break;
    std::this_thread::yield();
  }

  auto schema = Get("/v1/graphs/g/schema");
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ(schema->status, 200);
  EXPECT_EQ(schema->headers["x-pghive-epoch"], std::to_string(kBatches));
  EXPECT_EQ(schema->body, golden[kBatches]);  // byte-identical

  // Historical epochs within retention serve their exact golden bytes.
  auto old_schema = Get("/v1/graphs/g/schema?epoch=5");
  ASSERT_TRUE(old_schema.ok());
  ASSERT_EQ(old_schema->status, 200);
  EXPECT_EQ(old_schema->body, golden[5]);

  auto list = Get("/v1/graphs");
  ASSERT_TRUE(list.ok());
  EXPECT_NE(list->body.find("\"name\":\"g\""), std::string::npos);

  auto metrics = Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("pghive.serve.batches_admitted"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("pghive.serve.epochs_published"),
            std::string::npos);

  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, ErrorPathsAnswerTheRightStatusCodes) {
  StartServer(FastHostOptions());

  auto unknown_graph = Get("/v1/graphs/nope/schema");
  ASSERT_TRUE(unknown_graph.ok());
  EXPECT_EQ(unknown_graph->status, 404);

  auto unknown_route = Get("/v2/everything");
  ASSERT_TRUE(unknown_route.ok());
  EXPECT_EQ(unknown_route->status, 404);

  auto wrong_method = Post("/v1/graphs", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto bad_json = Post("/v1/graphs/g/batches", "{not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status, 400);

  auto bad_batch = Post("/v1/graphs/g/batches", R"({"nodes": 7})");
  ASSERT_TRUE(bad_batch.ok());
  EXPECT_EQ(bad_batch->status, 400);

  auto bad_epoch = Get("/v1/graphs/g/schema?epoch=abc");
  ASSERT_TRUE(bad_epoch.ok());
  EXPECT_EQ(bad_epoch->status, 400);

  auto unretained_epoch = Get("/v1/graphs/g/schema?epoch=7");
  ASSERT_TRUE(unretained_epoch.ok());
  EXPECT_EQ(unretained_epoch->status, 404);

  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, FullQueueAnswers429WithRetryAfter) {
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 3);
  GraphHostOptions options = FastHostOptions();
  options.queue_capacity = 1;
  StartServer(std::move(options));
  server_->FindGraph("g")->PauseWriterForTest(true);

  auto first = Post("/v1/graphs/g/batches", BatchToJson(payloads[0]).Dump());
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status, 202) << first->body;

  auto second = Post("/v1/graphs/g/batches", BatchToJson(payloads[1]).Dump());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, 429);
  EXPECT_FALSE(second->headers["retry-after"].empty());

  server_->FindGraph("g")->PauseWriterForTest(false);
  // After the writer catches up the same batch is admitted.
  for (;;) {
    auto retried =
        Post("/v1/graphs/g/batches", BatchToJson(payloads[1]).Dump());
    ASSERT_TRUE(retried.ok());
    if (retried->status == 202) break;
    ASSERT_EQ(retried->status, 429);
    std::this_thread::yield();
  }
  EXPECT_TRUE(server_->Stop().ok());
}

// --- Schema drift over HTTP. ---

/// Three batches with inserts, deletions and an update: enough to retire a
/// type (Legacy) and produce a multi-epoch drift history.
std::vector<store::BatchPayload> MutationPayloads() {
  auto node = [](const std::string& label, const std::string& key,
                 const std::string& value) {
    NodeData n;
    n.labels = {label};
    n.properties[key] = Value::String(value);
    return n;
  };
  std::vector<store::BatchPayload> payloads(3);
  for (int i = 0; i < 4; ++i) {
    payloads[0].nodes.push_back(
        node("Person", "p_name", "p" + std::to_string(i)));
  }
  payloads[0].nodes.push_back(node("Legacy", "l_tag", "a"));
  payloads[0].nodes.push_back(node("Legacy", "l_tag", "b"));
  EdgeData knows;
  knows.source = 0;
  knows.target = 1;
  knows.labels = {"KNOWS"};
  payloads[0].edges.push_back(knows);

  payloads[1].mutations.delete_nodes = {4, 5};  // Legacy retires
  payloads[1].mutations.delete_edges = {0};
  NodeUpdate nu;
  nu.id = 0;
  nu.data = node("Person", "p_name", "p0b");
  payloads[1].mutations.update_nodes = {nu};

  payloads[2].nodes.push_back(node("Person", "p_name", "p9"));
  return payloads;
}

TEST(ServeWireTest, MutationBatchRoundTripsThroughJson) {
  const std::vector<store::BatchPayload> payloads = MutationPayloads();
  const store::BatchPayload& payload = payloads[1];
  auto round = BatchFromJson(BatchToJson(payload));
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->mutations.delete_nodes, payload.mutations.delete_nodes);
  EXPECT_EQ(round->mutations.delete_edges, payload.mutations.delete_edges);
  ASSERT_EQ(round->mutations.update_nodes.size(), 1u);
  EXPECT_EQ(round->mutations.update_nodes[0].id, 0u);
  EXPECT_EQ(round->mutations.update_nodes[0].data.properties.at("p_name"),
            Value::String("p0b"));

  // Curl-style plain JSON spelling.
  auto parsed = BatchFromJson(
      ParseJson(R"({"delete_nodes":[1,2],"update_edges":[
        {"id":0,"source":3,"target":4,"labels":["KNOWS"]}]})")
          .value());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->mutations.delete_nodes, (std::vector<NodeId>{1, 2}));
  ASSERT_EQ(parsed->mutations.update_edges.size(), 1u);
  EXPECT_EQ(parsed->mutations.update_edges[0].data.source, 3u);

  // Malformed mutation members are rejected.
  EXPECT_FALSE(
      BatchFromJson(ParseJson(R"({"delete_nodes":["x"]})").value()).ok());
  EXPECT_FALSE(
      BatchFromJson(ParseJson(R"({"delete_nodes":[-1]})").value()).ok());
  EXPECT_FALSE(
      BatchFromJson(ParseJson(R"({"update_nodes":[{"labels":["A"]}]})").value())
          .ok());
  EXPECT_FALSE(
      BatchFromJson(ParseJson(R"({"update_edges":[{"id":0}]})").value()).ok());
}

TEST_F(ServeEndToEndTest, DriftEndpointServesExactDiffSequence) {
  const std::vector<store::BatchPayload> payloads = MutationPayloads();

  // Golden: the drift JSON a sequential durable run over the same batches
  // produces.
  std::string golden_all;
  std::string golden_tail;
  {
    auto store = store::DurableDiscoverer::OpenOrRecover(
                     TestDir("drift_golden"), FastStoreOptions())
                     .value();
    for (const auto& payload : payloads) {
      ASSERT_TRUE(store->Feed(payload).ok());
    }
    golden_all = drift::DriftToJson(store->drift_tracker(), 0).Dump() + "\n";
    golden_tail = drift::DriftToJson(store->drift_tracker(), 1).Dump() + "\n";
  }

  StartServer(FastHostOptions());
  for (const auto& payload : payloads) {
    auto resp = Post("/v1/graphs/g/batches", BatchToJson(payload).Dump());
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->status, 202) << resp->body;
  }
  for (;;) {
    auto detail = Get("/v1/graphs/g");
    ASSERT_TRUE(detail.ok()) << detail.status();
    auto doc = ParseJson(detail->body);
    ASSERT_TRUE(doc.ok());
    if (static_cast<size_t>(doc->GetInt("epoch").value()) == payloads.size())
      break;
    std::this_thread::yield();
  }

  auto drift = Get("/v1/graphs/g/drift");
  ASSERT_TRUE(drift.ok()) << drift.status();
  ASSERT_EQ(drift->status, 200) << drift->body;
  EXPECT_EQ(drift->headers["x-pghive-epoch"], std::to_string(payloads.size()));
  EXPECT_EQ(drift->body, golden_all);  // exact per-epoch diff sequence

  auto tail = Get("/v1/graphs/g/drift?since=1");
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->status, 200);
  EXPECT_EQ(tail->body, golden_tail);

  auto bad = Get("/v1/graphs/g/drift?since=abc");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);

  auto wrong_method = Post("/v1/graphs/g/drift", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, DriftLongPollWakesWhenTheNextEpochPublishes) {
  const std::vector<store::BatchPayload> payloads = MutationPayloads();
  StartServer(FastHostOptions());

  Result<HttpResponse> polled = Status::Internal("not run");
  std::thread poller([&] {
    polled = HttpCall("127.0.0.1", port_, "GET",
                      "/v1/graphs/g/drift?since=0&wait=1");
  });
  auto resp = Post("/v1/graphs/g/batches", BatchToJson(payloads[0]).Dump());
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->status, 202);
  poller.join();

  ASSERT_TRUE(polled.ok()) << polled.status();
  ASSERT_EQ(polled->status, 200);
  EXPECT_GE(std::stoull(polled->headers["x-pghive-epoch"]), 1u);
  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, DriftEndpointAnswers404WhenTrackingIsOff) {
  GraphHostOptions options = FastHostOptions();
  options.store.track_drift = false;
  StartServer(std::move(options));
  auto resp = Get("/v1/graphs/g/drift");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 404);
  EXPECT_TRUE(server_->Stop().ok());
}

// --- Observability endpoints: readiness, metrics formats, tracing,
// --- access log, alerts. ---

TEST_F(ServeEndToEndTest, ReadyzReportsWriterAndQueueSaturation) {
  GraphHostOptions options = FastHostOptions();
  options.queue_capacity = 1;
  StartServer(std::move(options));

  auto ready = Get("/readyz");
  ASSERT_TRUE(ready.ok()) << ready.status();
  EXPECT_EQ(ready->status, 200);
  auto doc = ParseJson(ready->body);
  ASSERT_TRUE(doc.ok()) << ready->body;
  EXPECT_EQ((*doc)["status"].AsString(), "ready");
  const auto& graphs = (*doc)["graphs"].AsArray();
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0]["name"].AsString(), "g");
  EXPECT_TRUE(graphs[0]["writer_ok"].AsBool());
  EXPECT_FALSE(graphs[0]["saturated"].AsBool());
  EXPECT_EQ(graphs[0]["queue_capacity"].AsInt(), 1);

  // A paused writer with a full queue turns readiness off (503) without
  // affecting liveness (/healthz stays 200).
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 2);
  server_->FindGraph("g")->PauseWriterForTest(true);
  auto admit = Post("/v1/graphs/g/batches", BatchToJson(payloads[0]).Dump());
  ASSERT_TRUE(admit.ok());
  ASSERT_EQ(admit->status, 202) << admit->body;

  auto saturated = Get("/readyz");
  ASSERT_TRUE(saturated.ok());
  EXPECT_EQ(saturated->status, 503) << saturated->body;
  auto sat_doc = ParseJson(saturated->body);
  ASSERT_TRUE(sat_doc.ok());
  EXPECT_EQ((*sat_doc)["status"].AsString(), "unready");
  auto health = Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);

  server_->FindGraph("g")->PauseWriterForTest(false);
  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, MetricsFormatsAndContentTypes) {
  StartServer(FastHostOptions());
  const PropertyGraph g = MakeTestGraph(60, 120);
  const auto payloads = store::MakeStreamBatches(g, 1);
  auto admit = Post("/v1/graphs/g/batches", BatchToJson(payloads[0]).Dump());
  ASSERT_TRUE(admit.ok());
  ASSERT_EQ(admit->status, 202) << admit->body;

  auto jsonl = Get("/metrics");
  ASSERT_TRUE(jsonl.ok()) << jsonl.status();
  ASSERT_EQ(jsonl->status, 200);
  EXPECT_EQ(jsonl->headers["content-type"],
            "application/x-ndjson; charset=utf-8");
  EXPECT_NE(jsonl->body.find("pghive.serve.batches_admitted"),
            std::string::npos);

  auto prom = Get("/metrics?format=prometheus");
  ASSERT_TRUE(prom.ok()) << prom.status();
  ASSERT_EQ(prom->status, 200);
  EXPECT_EQ(prom->headers["content-type"],
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(prom->body.find("# TYPE pghive_serve_batches_admitted_total "
                            "counter"),
            std::string::npos);
  // Exposition lines never carry the dotted spelling.
  EXPECT_EQ(prom->body.find("pghive.serve"), std::string::npos);

  auto bogus = Get("/metrics?format=xml");
  ASSERT_TRUE(bogus.ok());
  EXPECT_EQ(bogus->status, 400);

  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, TraceIdIsEchoedAndAccessLogRecordsRequests) {
  const std::string log_path =
      TestDir("access_log_dir") + "_access.jsonl";
  std::filesystem::remove(log_path);
  ServeOptions options;
  options.num_workers = 2;
  options.graph = FastHostOptions();
  options.access_log_path = log_path;
  StartServerAt(std::move(options), TestDir("access_state"));

  // An inbound x-pghive-trace-id is honored and echoed back.
  auto dial = DialTcp("127.0.0.1", port_);
  ASSERT_TRUE(dial.ok()) << dial.status();
  {
    HttpConnection conn(*dial);
    const std::string raw =
        "GET /healthz HTTP/1.1\r\n"
        "host: test\r\n"
        "x-pghive-trace-id: deadbeefcafe0123\r\n"
        "connection: close\r\n\r\n";
    ASSERT_EQ(::send(*dial, raw.data(), raw.size(), 0),
              static_cast<ssize_t>(raw.size()));
    auto echoed = conn.ReadResponse(1 << 20);
    ASSERT_TRUE(echoed.ok()) << echoed.status();
    EXPECT_EQ(echoed->status, 200);
    EXPECT_EQ(echoed->headers["x-pghive-trace-id"], "deadbeefcafe0123");
  }

  // Without an inbound id the server generates one (access log is active).
  auto generated = Get("/v1/graphs/g");
  ASSERT_TRUE(generated.ok()) << generated.status();
  EXPECT_EQ(generated->headers["x-pghive-trace-id"].size(), 16u);
  EXPECT_NE(generated->headers["x-pghive-trace-id"], "deadbeefcafe0123");

  EXPECT_TRUE(server_->Stop().ok());

  // The access log holds one JSONL record per request, carrying the ids.
  auto log = ReadFile(log_path);
  ASSERT_TRUE(log.ok()) << log.status();
  size_t lines = 0;
  bool saw_inbound_id = false;
  size_t pos = 0;
  while (pos < log->size()) {
    size_t end = log->find('\n', pos);
    if (end == std::string::npos) end = log->size();
    const std::string line = log->substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    ++lines;
    auto record = ParseJson(line);
    ASSERT_TRUE(record.ok()) << line;
    EXPECT_TRUE((*record)["method"].is_string()) << line;
    EXPECT_TRUE((*record)["path"].is_string()) << line;
    EXPECT_TRUE((*record)["status"].is_number()) << line;
    if ((*record)["trace"].is_string() &&
        (*record)["trace"].AsString() == "deadbeefcafe0123") {
      saw_inbound_id = true;
      EXPECT_EQ((*record)["path"].AsString(), "/healthz");
    }
  }
  EXPECT_GE(lines, 2u);
  EXPECT_TRUE(saw_inbound_id);
}

TEST_F(ServeEndToEndTest, AlertsFireOverHttpAndSurviveRestart) {
  const std::string state_dir = TestDir("alerts_state");
  const std::string rules_path = TestDir("alerts_rules_dir") + "_rules.txt";
  ASSERT_TRUE(WriteFile(rules_path,
                        "# serve alert smoke rules\n"
                        "alert legacy_gone drift type_retired type=Legacy* "
                        "resolve_after=8\n"
                        "alert never metric pghive.serve.queue_depth.g > "
                        "1000000\n")
                  .ok());

  GraphHostOptions host = FastHostOptions();
  host.alert_rules_path = rules_path;
  ServeOptions options;
  options.num_workers = 2;
  options.graph = host;
  StartServerAt(std::move(options), state_dir);

  // Before any drift: rules listed, nothing firing.
  auto quiet = Get("/v1/graphs/g/alerts");
  ASSERT_TRUE(quiet.ok()) << quiet.status();
  ASSERT_EQ(quiet->status, 200) << quiet->body;
  {
    auto doc = ParseJson(quiet->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ((*doc)["firing"].AsInt(), 0);
    EXPECT_EQ((*doc)["rules"].AsArray().size(), 2u);
  }

  // MutationPayloads retires the Legacy type at epoch 2.
  const std::vector<store::BatchPayload> payloads = MutationPayloads();
  for (const auto& payload : payloads) {
    auto resp = Post("/v1/graphs/g/batches", BatchToJson(payload).Dump());
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->status, 202) << resp->body;
  }
  for (;;) {
    auto detail = Get("/v1/graphs/g");
    ASSERT_TRUE(detail.ok()) << detail.status();
    auto doc = ParseJson(detail->body);
    ASSERT_TRUE(doc.ok());
    if (static_cast<size_t>(doc->GetInt("epoch").value()) == payloads.size())
      break;
    std::this_thread::yield();
  }

  auto fired = Get("/v1/graphs/g/alerts");
  ASSERT_TRUE(fired.ok()) << fired.status();
  ASSERT_EQ(fired->status, 200);
  {
    auto doc = ParseJson(fired->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ((*doc)["firing"].AsInt(), 1) << fired->body;
    const auto& rules = (*doc)["rules"].AsArray();
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0]["name"].AsString(), "legacy_gone");
    EXPECT_TRUE(rules[0]["firing"].AsBool());
    EXPECT_EQ(rules[0]["fired_epoch"].AsInt(), 2);
    EXPECT_EQ(rules[0]["last_detail"].AsString(),
              "node type Legacy retired");
    EXPECT_FALSE(rules[1]["firing"].AsBool());
  }

  // The drift body now names the firing rules (long-pollers see them).
  auto drift = Get("/v1/graphs/g/drift");
  ASSERT_TRUE(drift.ok());
  ASSERT_EQ(drift->status, 200);
  {
    auto doc = ParseJson(drift->body);
    ASSERT_TRUE(doc.ok());
    const auto& firing = (*doc)["alerts_firing"].AsArray();
    ASSERT_EQ(firing.size(), 1u);
    EXPECT_EQ(firing[0].AsString(), "legacy_gone");
  }

  EXPECT_TRUE(server_->Stop().ok());
  EXPECT_TRUE(
      std::filesystem::exists(state_dir + "/alerts-state.json"));

  // Restart over the same state dir: the alert is still firing with its
  // original epoch and count — state survived the restart.
  ServeOptions again;
  again.num_workers = 2;
  again.graph = host;
  StartServerAt(std::move(again), state_dir);
  auto restored = Get("/v1/graphs/g/alerts");
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->status, 200);
  {
    auto doc = ParseJson(restored->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ((*doc)["firing"].AsInt(), 1) << restored->body;
    const auto& rules = (*doc)["rules"].AsArray();
    EXPECT_TRUE(rules[0]["firing"].AsBool());
    EXPECT_EQ(rules[0]["fired_epoch"].AsInt(), 2);
    EXPECT_EQ(rules[0]["fire_count"].AsInt(), 1);
  }
  EXPECT_TRUE(server_->Stop().ok());
}

TEST_F(ServeEndToEndTest, AlertsEndpointAnswers404WithoutRules) {
  StartServer(FastHostOptions());
  auto resp = Get("/v1/graphs/g/alerts");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 404);
  EXPECT_TRUE(server_->Stop().ok());
}

}  // namespace
}  // namespace serve
}  // namespace pghive
