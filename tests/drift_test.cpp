// Tests for the mutation-stream + schema-drift subsystem: canonical batch
// application (drift/replay.h), net-surviving replay, the engine's
// retraction path (FeedMutations), DriftTracker history/counters/serde, the
// v3 journal records + inherited-segment rotation, the snapshot v4
// drift-history section, the non-monotone DiffSchemas directions mutation
// streams produce, and the evolution scenario generators.

#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/args.h"
#include "cli/commands.h"
#include "common/binary_io.h"
#include "common/csv.h"
#include "core/incremental.h"
#include "core/schema_diff.h"
#include "core/schema_json.h"
#include "datagen/evolution.h"
#include "drift/drift_tracker.h"
#include "drift/replay.h"
#include "graph/mutations.h"
#include "graph/property_graph.h"
#include "store/codec.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "store/state_store.h"
#include "text/label_embedder.h"

namespace pghive {
namespace {

NodeData Node(const std::string& label,
              std::map<std::string, Value> properties) {
  NodeData n;
  n.labels = {label};
  n.properties = std::move(properties);
  return n;
}

EdgeData Edge(NodeId source, NodeId target, const std::string& label) {
  EdgeData e;
  e.source = source;
  e.target = target;
  e.labels = {label};
  return e;
}

IncrementalOptions FastOptions() {
  IncrementalOptions opt;
  opt.pipeline.embedding.backend = EmbeddingBackend::kHash;
  return opt;
}

store::StoreOptions FastStoreOptions() {
  store::StoreOptions opt;
  opt.incremental = FastOptions();
  opt.fsync = false;
  return opt;
}

std::string TestDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/pghive_drift_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Applies a mutation stream through the engine's Feed/FeedMutations split
/// (the same dispatch the durable store uses) and returns the final
/// post-processed schema.
SchemaGraph DiscoverStream(const std::vector<MutationBatch>& stream,
                           const IncrementalOptions& opt) {
  PropertyGraph g;
  IncrementalDiscoverer engine(opt);
  for (const MutationBatch& mb : stream) {
    auto applied = drift::ApplyMutationBatch(&g, mb);
    EXPECT_TRUE(applied.ok()) << applied.status();
    if (!applied.ok()) break;
    Status s;
    if (applied->deleted_nodes.empty() && applied->deleted_edges.empty()) {
      if (applied->batch.num_nodes() == 0 && applied->batch.num_edges() == 0) {
        continue;  // empty batch: nothing to embed or cluster
      }
      s = engine.Feed(applied->batch);
    } else {
      s = engine.FeedMutations(applied->batch, applied->deleted_nodes,
                               applied->deleted_edges);
    }
    EXPECT_TRUE(s.ok()) << s;
    if (!s.ok()) break;
  }
  return engine.Finish(g);
}

const SchemaNodeType* FindNodeTypeWithLabel(const SchemaGraph& s,
                                            const std::string& label) {
  for (const auto& t : s.node_types) {
    if (t.labels.count(label)) return &t;
  }
  return nullptr;
}

// --- drift::ApplyMutationBatch. ---

TEST(ApplyMutationBatchTest, AppendsInCanonicalOrderAndCollectsDeletions) {
  PropertyGraph g;
  MutationBatch b0;
  b0.nodes.push_back(Node("Person", {{"p_name", Value::String("ann")}}));
  b0.nodes.push_back(Node("Person", {{"p_name", Value::String("bob")}}));
  b0.edges.push_back(Edge(0, 1, "KNOWS"));
  auto a0 = drift::ApplyMutationBatch(&g, b0);
  ASSERT_TRUE(a0.ok()) << a0.status();
  EXPECT_TRUE(a0->deleted_nodes.empty());
  EXPECT_TRUE(a0->deleted_edges.empty());
  EXPECT_EQ(a0->appended_nodes, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(a0->appended_edges, (std::vector<EdgeId>{0}));

  // Batch 1: update node 0, insert one node, update edge 0, insert an edge.
  MutationBatch b1;
  NodeUpdate nu;
  nu.id = 0;
  nu.data = Node("Person", {{"p_name", Value::String("ann2")}});
  b1.mutations.update_nodes.push_back(nu);
  b1.nodes.push_back(Node("Person", {{"p_name", Value::String("cat")}}));
  EdgeUpdate eu;
  eu.id = 0;
  eu.data = Edge(2, 1, "KNOWS");  // replacement endpoints: new node id 2
  b1.mutations.update_edges.push_back(eu);
  b1.edges.push_back(Edge(1, 3, "KNOWS"));

  auto a1 = drift::ApplyMutationBatch(&g, b1);
  ASSERT_TRUE(a1.ok()) << a1.status();
  // Canonical append order: update-node replacement (id 2), insert (id 3),
  // then update-edge replacement (id 1), insert (id 2).
  EXPECT_EQ(a1->appended_nodes, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(a1->appended_edges, (std::vector<EdgeId>{1, 2}));
  EXPECT_EQ(a1->deleted_nodes, (std::vector<NodeId>{0}));
  EXPECT_EQ(a1->deleted_edges, (std::vector<EdgeId>{0}));
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(a1->batch.num_nodes(), 2u);
  EXPECT_EQ(a1->batch.num_edges(), 2u);
}

TEST(ApplyMutationBatchTest, RejectsUnknownIdsAndSameBatchDoubleDeletes) {
  PropertyGraph g;
  MutationBatch b0;
  b0.nodes.push_back(Node("Person", {}));
  ASSERT_TRUE(drift::ApplyMutationBatch(&g, b0).ok());

  MutationBatch unknown_node;
  unknown_node.mutations.delete_nodes = {42};
  EXPECT_EQ(drift::ApplyMutationBatch(&g, unknown_node).status().code(),
            StatusCode::kInvalidArgument);

  MutationBatch unknown_edge;
  unknown_edge.mutations.delete_edges = {0};
  EXPECT_EQ(drift::ApplyMutationBatch(&g, unknown_edge).status().code(),
            StatusCode::kInvalidArgument);

  MutationBatch twice;
  twice.mutations.delete_nodes = {0, 0};
  EXPECT_EQ(drift::ApplyMutationBatch(&g, twice).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ApplyMutationBatchTest, RejectsEdgeToNodeDeletedInSameBatch) {
  PropertyGraph g;
  MutationBatch b0;
  b0.nodes.push_back(Node("Person", {}));
  b0.nodes.push_back(Node("Person", {}));
  ASSERT_TRUE(drift::ApplyMutationBatch(&g, b0).ok());

  MutationBatch bad;
  bad.mutations.delete_nodes = {1};
  bad.edges.push_back(Edge(0, 1, "KNOWS"));
  EXPECT_EQ(drift::ApplyMutationBatch(&g, bad).status().code(),
            StatusCode::kInvalidArgument);
}

// --- drift::NetSurvivingStream. ---

TEST(NetSurvivingStreamTest, PreservesBoundariesAndRemapsEndpoints) {
  // Batch 0: nodes 0,1,2 + edge 0->1. Batch 1: delete node 1 and its edge,
  // insert node 3 + edge 2->3. Batch 2: empty.
  std::vector<MutationBatch> stream(3);
  stream[0].nodes = {Node("A", {}), Node("A", {}), Node("A", {})};
  stream[0].edges = {Edge(0, 1, "R")};
  stream[1].mutations.delete_nodes = {1};
  stream[1].mutations.delete_edges = {0};
  stream[1].nodes = {Node("A", {})};
  stream[1].edges = {Edge(2, 3, "R")};

  auto net = drift::NetSurvivingStream(stream);
  ASSERT_TRUE(net.ok()) << net.status();
  ASSERT_EQ(net->size(), 3u);
  // Survivors: nodes 0,2 from batch 0 (compacted ids 0,1), node 3 from
  // batch 1 (compacted id 2); edge 2->3 remaps to 1->2.
  EXPECT_EQ((*net)[0].nodes.size(), 2u);
  EXPECT_EQ((*net)[0].edges.size(), 0u);
  ASSERT_EQ((*net)[1].nodes.size(), 1u);
  ASSERT_EQ((*net)[1].edges.size(), 1u);
  EXPECT_EQ((*net)[1].edges[0].source, 1u);
  EXPECT_EQ((*net)[1].edges[0].target, 2u);
  EXPECT_TRUE((*net)[2].nodes.empty());
  EXPECT_TRUE((*net)[2].edges.empty());
  for (const auto& batch : *net) EXPECT_TRUE(batch.mutations.empty());
}

TEST(NetSurvivingStreamTest, RejectsSurvivingEdgeWithDeletedEndpoint) {
  std::vector<MutationBatch> stream(2);
  stream[0].nodes = {Node("A", {}), Node("A", {})};
  stream[0].edges = {Edge(0, 1, "R")};
  stream[1].mutations.delete_nodes = {1};  // edge 0 still alive: closure broken
  auto net = drift::NetSurvivingStream(stream);
  EXPECT_EQ(net.status().code(), StatusCode::kInvalidArgument);
}

// --- Engine retraction path (FeedMutations end-to-end). ---

TEST(FeedMutationsTest, TypeRetiresWhenAllMembersAreDeleted) {
  std::vector<MutationBatch> stream(2);
  for (int i = 0; i < 4; ++i) {
    stream[0].nodes.push_back(
        Node("Person", {{"p_name", Value::String("p" + std::to_string(i))}}));
  }
  for (int i = 0; i < 3; ++i) {
    stream[0].nodes.push_back(
        Node("Legacy", {{"l_tag", Value::Int(i)}}));
  }
  stream[1].mutations.delete_nodes = {4, 5, 6};

  SchemaGraph schema = DiscoverStream(stream, FastOptions());
  EXPECT_NE(FindNodeTypeWithLabel(schema, "Person"), nullptr);
  EXPECT_EQ(FindNodeTypeWithLabel(schema, "Legacy"), nullptr);
}

TEST(FeedMutationsTest, PropertyRetiresAndConstraintTightens) {
  // p_tmp exists only on node 3; p_age is missing only on node 3. Deleting
  // node 3 removes p_tmp from the schema and makes p_age MANDATORY — both
  // non-monotone transitions the insert-only chain cannot produce.
  std::vector<MutationBatch> stream(2);
  for (int i = 0; i < 3; ++i) {
    stream[0].nodes.push_back(Node(
        "Person", {{"p_name", Value::String("p" + std::to_string(i))},
                   {"p_age", Value::Int(20 + i)}}));
  }
  stream[0].nodes.push_back(
      Node("Person", {{"p_name", Value::String("tmp")},
                      {"p_tmp", Value::Bool(true)}}));
  stream[1].mutations.delete_nodes = {3};

  SchemaGraph schema = DiscoverStream(stream, FastOptions());
  const SchemaNodeType* person = FindNodeTypeWithLabel(schema, "Person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(person->property_keys.count("p_tmp"), 0u);
  EXPECT_EQ(person->constraints.count("p_tmp"), 0u);
  ASSERT_EQ(person->constraints.count("p_age"), 1u);
  EXPECT_TRUE(person->constraints.at("p_age").mandatory);
}

TEST(FeedMutationsTest, DatatypeNarrowsWhenTheWideningValueRetires) {
  // mx_score is Int on every survivor; the single Double carrier is deleted,
  // so the final declared datatype narrows back to Int.
  std::vector<MutationBatch> stream(2);
  for (int i = 0; i < 3; ++i) {
    stream[0].nodes.push_back(
        Node("Mixed", {{"mx_score", Value::Int(10 * i)}}));
  }
  stream[0].nodes.push_back(
      Node("Mixed", {{"mx_score", Value::Double(1.5)}}));
  stream[1].mutations.delete_nodes = {3};

  SchemaGraph schema = DiscoverStream(stream, FastOptions());
  const SchemaNodeType* mixed = FindNodeTypeWithLabel(schema, "Mixed");
  ASSERT_NE(mixed, nullptr);
  ASSERT_EQ(mixed->constraints.count("mx_score"), 1u);
  EXPECT_EQ(mixed->constraints.at("mx_score").type, DataType::kInt);
}

TEST(FeedMutationsTest, DoubleDeleteAcrossBatchesIsInvalidArgument) {
  PropertyGraph g;
  IncrementalDiscoverer engine(FastOptions());
  MutationBatch b0;
  b0.nodes = {Node("Person", {}), Node("Person", {})};
  auto a0 = drift::ApplyMutationBatch(&g, b0).value();
  ASSERT_TRUE(engine.Feed(a0.batch).ok());

  MutationBatch b1;
  b1.mutations.delete_nodes = {1};
  auto a1 = drift::ApplyMutationBatch(&g, b1).value();
  ASSERT_TRUE(
      engine.FeedMutations(a1.batch, a1.deleted_nodes, a1.deleted_edges).ok());

  // The graph still holds node 1's bytes (tombstone), so the batch applies;
  // the engine's retraction index knows it is already gone.
  MutationBatch b2;
  b2.mutations.delete_nodes = {1};
  auto a2 = drift::ApplyMutationBatch(&g, b2).value();
  Status again =
      engine.FeedMutations(a2.batch, a2.deleted_nodes, a2.deleted_edges);
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
}

TEST(FeedMutationsTest, RequiresAggregatePostProcessing) {
  IncrementalOptions opt = FastOptions();
  opt.pipeline.aggregate_post_process = false;
  PropertyGraph g;
  IncrementalDiscoverer engine(opt);
  MutationBatch b0;
  b0.nodes = {Node("Person", {})};
  auto a0 = drift::ApplyMutationBatch(&g, b0).value();
  ASSERT_TRUE(engine.Feed(a0.batch).ok());

  MutationBatch b1;
  b1.mutations.delete_nodes = {0};
  auto a1 = drift::ApplyMutationBatch(&g, b1).value();
  Status s =
      engine.FeedMutations(a1.batch, a1.deleted_nodes, a1.deleted_edges);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

// --- Non-monotone DiffSchemas directions (what drift records look like). ---

SchemaGraph DiffBaseSchema() {
  SchemaGraph s;
  SchemaNodeType person;
  person.name = "Person";
  person.labels = {"Person"};
  person.property_keys = {"name", "age"};
  person.constraints["name"] = {DataType::kString, false};
  person.constraints["age"] = {DataType::kInt, true};
  s.node_types.push_back(person);
  SchemaEdgeType knows;
  knows.name = "KNOWS";
  knows.labels = {"KNOWS"};
  knows.source_labels = {"Person"};
  knows.target_labels = {"Person"};
  knows.cardinality = SchemaCardinality::kManyToMany;
  s.edge_types.push_back(knows);
  return s;
}

TEST(DriftDiffTest, RemovedPropertyDetected) {
  SchemaGraph from = DiffBaseSchema();
  SchemaGraph to = DiffBaseSchema();
  to.node_types[0].property_keys.erase("age");
  to.node_types[0].constraints.erase("age");
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].removed_properties,
            (std::set<std::string>{"age"}));
}

TEST(DriftDiffTest, BecameMandatoryDetected) {
  SchemaGraph from = DiffBaseSchema();
  SchemaGraph to = DiffBaseSchema();
  to.node_types[0].constraints["name"] = {DataType::kString, true};
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  ASSERT_EQ(diff.changed_types[0].became_mandatory.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].became_mandatory[0], "name");
}

TEST(DriftDiffTest, CardinalityDowngradeDetected) {
  SchemaGraph from = DiffBaseSchema();
  SchemaGraph to = DiffBaseSchema();
  to.edge_types[0].cardinality = SchemaCardinality::kZeroOrOne;
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.changed_types.size(), 1u);
  EXPECT_EQ(diff.changed_types[0].cardinality_change, "M:N -> 0:1");
}

TEST(DriftDiffTest, RetiredTypeDetected) {
  SchemaGraph from = DiffBaseSchema();
  SchemaGraph to = DiffBaseSchema();
  to.node_types.clear();
  SchemaDiff diff = DiffSchemas(from, to);
  ASSERT_EQ(diff.removed_node_types.size(), 1u);
  EXPECT_EQ(diff.removed_node_types[0], "Person");
}

// --- DriftTracker. ---

TEST(DriftTrackerTest, RecordsOnlyChangedEpochs) {
  drift::DriftTracker tracker;
  SchemaGraph base = DiffBaseSchema();
  tracker.Observe(1, base);  // from empty baseline: types added
  tracker.Observe(2, base);  // unchanged: not recorded
  SchemaGraph shrunk = base;
  shrunk.node_types[0].property_keys.erase("age");
  shrunk.node_types[0].constraints.erase("age");
  tracker.Observe(3, shrunk);

  EXPECT_EQ(tracker.counters().epochs_observed, 3u);
  EXPECT_EQ(tracker.counters().epochs_changed, 2u);
  ASSERT_EQ(tracker.history().size(), 2u);
  EXPECT_EQ(tracker.history()[0].epoch, 1u);
  EXPECT_EQ(tracker.history()[1].epoch, 3u);
  EXPECT_EQ(tracker.counters().node_types_added, 1u);
  EXPECT_EQ(tracker.counters().edge_types_added, 1u);
  EXPECT_EQ(tracker.counters().properties_removed, 1u);
  EXPECT_EQ(tracker.last_epoch(), 3u);
}

TEST(DriftTrackerTest, HistoryIsBoundedCountersAreNot) {
  drift::DriftTracker tracker(/*max_history=*/2);
  SchemaGraph a = DiffBaseSchema();
  SchemaGraph b = DiffBaseSchema();
  b.node_types[0].property_keys.insert("extra");
  const SchemaGraph* flip[2] = {&a, &b};
  for (uint64_t e = 1; e <= 5; ++e) tracker.Observe(e, *flip[e % 2]);

  EXPECT_EQ(tracker.history().size(), 2u);
  EXPECT_EQ(tracker.history()[0].epoch, 4u);
  EXPECT_EQ(tracker.history()[1].epoch, 5u);
  EXPECT_EQ(tracker.counters().epochs_changed, 5u);
}

TEST(DriftTrackerTest, SerializeRestoreRoundTrips) {
  drift::DriftTracker tracker;
  SchemaGraph base = DiffBaseSchema();
  tracker.Observe(1, base);
  SchemaGraph shrunk = base;
  shrunk.edge_types[0].cardinality = SchemaCardinality::kZeroOrOne;
  tracker.Observe(2, shrunk);

  const std::string bytes = tracker.Serialize();
  drift::DriftTracker restored;
  ASSERT_TRUE(restored.Restore(bytes).ok());
  EXPECT_EQ(restored.counters(), tracker.counters());
  EXPECT_EQ(restored.last_epoch(), 2u);
  ASSERT_EQ(restored.history().size(), tracker.history().size());
  for (size_t i = 0; i < restored.history().size(); ++i) {
    EXPECT_EQ(restored.history()[i].epoch, tracker.history()[i].epoch);
    EXPECT_EQ(restored.history()[i].diff.ToString(),
              tracker.history()[i].diff.ToString());
  }

  drift::DriftTracker garbage;
  EXPECT_FALSE(garbage.Restore("not a drift history").ok());
}

TEST(DriftTrackerTest, JsonFiltersHistoryBySince) {
  drift::DriftTracker tracker;
  SchemaGraph a = DiffBaseSchema();
  SchemaGraph b = DiffBaseSchema();
  b.node_types[0].property_keys.insert("extra");
  tracker.Observe(1, a);
  tracker.Observe(3, b);

  JsonValue all = drift::DriftToJson(tracker, /*since=*/0);
  ASSERT_TRUE(all["history"].is_array());
  EXPECT_EQ(all["history"].AsArray().size(), 2u);
  EXPECT_EQ(all.GetInt("epoch").value(), 3);

  JsonValue tail = drift::DriftToJson(tracker, /*since=*/1);
  ASSERT_TRUE(tail["history"].is_array());
  ASSERT_EQ(tail["history"].AsArray().size(), 1u);
  EXPECT_EQ(tail["history"].AsArray()[0].GetInt("epoch").value(), 3);
  EXPECT_EQ(tail.GetInt("since").value(), 1);
}

// --- Journal v3 records + segment rotation. ---

MutationBatch MixedPayload() {
  MutationBatch payload;
  payload.nodes = {Node("Person", {{"p_name", Value::String("new")}})};
  payload.edges = {Edge(0, 2, "KNOWS")};
  payload.mutations.delete_nodes = {1};
  payload.mutations.delete_edges = {0};
  NodeUpdate nu;
  nu.id = 0;
  nu.data = Node("Person", {{"p_name", Value::String("renamed")}});
  payload.mutations.update_nodes = {nu};
  EdgeUpdate eu;
  eu.id = 1;
  eu.data = Edge(2, 3, "KNOWS");
  payload.mutations.update_edges = {eu};
  return payload;
}

TEST(JournalV3Test, MutationPayloadRoundTrips) {
  const MutationBatch payload = MixedPayload();
  BinaryWriter w;
  store::EncodeBatchPayloadV3(payload, &w);
  BinaryReader r(w.buffer());
  auto decoded = store::DecodeBatchPayloadV3(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  ASSERT_EQ(decoded->nodes.size(), 1u);
  EXPECT_EQ(decoded->nodes[0].labels, (std::set<std::string>{"Person"}));
  ASSERT_EQ(decoded->edges.size(), 1u);
  EXPECT_EQ(decoded->edges[0].source, 0u);
  EXPECT_EQ(decoded->edges[0].target, 2u);
  EXPECT_EQ(decoded->mutations.delete_nodes, (std::vector<NodeId>{1}));
  EXPECT_EQ(decoded->mutations.delete_edges, (std::vector<EdgeId>{0}));
  ASSERT_EQ(decoded->mutations.update_nodes.size(), 1u);
  EXPECT_EQ(decoded->mutations.update_nodes[0].id, 0u);
  EXPECT_EQ(decoded->mutations.update_nodes[0].data.properties.at("p_name"),
            Value::String("renamed"));
  ASSERT_EQ(decoded->mutations.update_edges.size(), 1u);
  EXPECT_EQ(decoded->mutations.update_edges[0].id, 1u);
  EXPECT_EQ(decoded->mutations.update_edges[0].data.target, 3u);
}

TEST(JournalV3Test, MutationBatchRotatesInheritedV2Segment) {
  const std::string dir = TestDir("rotate_v2");
  std::filesystem::create_directories(dir);
  const std::string seg = dir + "/journal-00000000000000000000.wal";
  // A v2-header segment holding one v2 (insert-only) record, as an upgraded
  // deployment would inherit it.
  ASSERT_TRUE(
      WriteFile(seg, std::string("PGHJ") + std::string("\x02\x00\x00\x00", 4))
          .ok());
  {
    store::JournalWriter w;
    ASSERT_TRUE(w.Open(seg, /*fsync=*/false).ok());
    ASSERT_EQ(w.format_version(), 2u);
    BinaryWriter payload;
    std::vector<NodeData> nodes = {Node("Person", {}), Node("Person", {})};
    store::EncodeBatchPayloadV2(nodes, {}, &payload);
    ASSERT_TRUE(w.Append(0, payload.buffer()).ok());
  }

  store::RecoveryReport report;
  auto opened =
      store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions(), &report);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(report.replayed_batches, 1u);

  MutationBatch del;
  del.mutations.delete_nodes = {1};
  ASSERT_TRUE((*opened)->Feed(del).ok());

  // The pre-v3 segment was rotated out: a second, v3 segment now carries
  // the mutation record.
  const auto segments = store::ListJournalFiles(dir);
  ASSERT_EQ(segments.size(), 2u);
  auto read = store::ReadJournalSegment(segments.back());
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload.mutations.delete_nodes,
            (std::vector<NodeId>{1}));

  // A fresh recovery replays both segments to the surviving-node schema.
  opened->reset();
  store::RecoveryReport report2;
  auto reopened =
      store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions(),
                                              &report2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->batches_applied(), 2u);
}

TEST(JournalV3Test, EmptyInheritedSegmentIsReplacedInPlace) {
  const std::string dir = TestDir("rotate_empty");
  std::filesystem::create_directories(dir);
  const std::string seg = dir + "/journal-00000000000000000000.wal";
  // Header-only v1 segment: zero records, so rotation reuses its name.
  ASSERT_TRUE(
      WriteFile(seg, std::string("PGHJ") + std::string("\x01\x00\x00\x00", 4))
          .ok());

  auto opened = store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
  ASSERT_TRUE(opened.ok()) << opened.status();
  MutationBatch b;
  b.nodes = {Node("Person", {})};
  b.mutations = {};
  ASSERT_TRUE((*opened)->Feed(b).ok());
  MutationBatch del;
  del.mutations.delete_nodes = {0};
  ASSERT_TRUE((*opened)->Feed(del).ok());

  const auto segments = store::ListJournalFiles(dir);
  for (const std::string& path : segments) {
    auto read = store::ReadJournalSegment(path);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_FALSE(read->torn_tail);
  }
  EXPECT_EQ((*opened)->batches_applied(), 2u);
}

// --- Durable store: drift history in snapshots, per-op metrics. ---

std::vector<MutationBatch> SmallMutationStream() {
  std::vector<MutationBatch> stream(3);
  for (int i = 0; i < 4; ++i) {
    stream[0].nodes.push_back(
        Node("Person", {{"p_name", Value::String("p" + std::to_string(i))}}));
  }
  for (int i = 0; i < 2; ++i) {
    stream[0].nodes.push_back(Node("Legacy", {{"l_tag", Value::Int(i)}}));
  }
  stream[0].edges.push_back(Edge(0, 1, "KNOWS"));
  stream[1].mutations.delete_nodes = {4, 5};  // Legacy retires
  NodeUpdate nu;
  nu.id = 0;
  nu.data = Node("Person", {{"p_name", Value::String("p0b")}});
  stream[1].mutations.update_nodes = {nu};
  stream[1].mutations.delete_edges = {0};  // node 0's incident edge
  stream[2].nodes = {Node("Person", {{"p_name", Value::String("p9")}})};
  return stream;
}

TEST(StoreDriftTest, SnapshotCarriesDriftHistoryAcrossRecovery) {
  const std::string dir = TestDir("snapshot_drift");
  std::vector<MutationBatch> stream = SmallMutationStream();
  drift::DriftCounters before;
  {
    auto opened =
        store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (const auto& batch : stream) {
      ASSERT_TRUE((*opened)->Feed(batch).ok());
    }
    const drift::DriftTracker& tracker = (*opened)->drift_tracker();
    EXPECT_EQ(tracker.counters().epochs_observed, 3u);
    EXPECT_GE(tracker.counters().node_types_retired, 1u);
    before = tracker.counters();
    ASSERT_TRUE((*opened)->Checkpoint().ok());
  }

  // The newest snapshot decodes with the section present.
  const auto snapshots = store::ListSnapshotFiles(dir);
  ASSERT_FALSE(snapshots.empty());
  auto bytes = ReadFile(snapshots.front());
  ASSERT_TRUE(bytes.ok());
  auto snap = store::DecodeSnapshot(*bytes);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_TRUE(snap->has_drift);
  drift::DriftTracker from_snapshot;
  ASSERT_TRUE(from_snapshot.Restore(snap->drift_history).ok());
  EXPECT_EQ(from_snapshot.counters(), before);

  // Recovery restores the same history and counters.
  auto reopened =
      store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->drift_tracker().counters(), before);

  // inspect-state's metrics see the mutation ops and the drift section.
  const store::StateDirMetrics metrics = store::CollectStateDirMetrics(dir);
  EXPECT_GT(metrics.drift_history_bytes, 0u);
}

TEST(StoreDriftTest, TrackDriftOffKeepsSnapshotsLean) {
  const std::string dir = TestDir("drift_off");
  store::StoreOptions opt = FastStoreOptions();
  opt.track_drift = false;
  auto opened = store::DurableDiscoverer::OpenOrRecover(dir, opt);
  ASSERT_TRUE(opened.ok()) << opened.status();
  for (const auto& batch : SmallMutationStream()) {
    ASSERT_TRUE((*opened)->Feed(batch).ok());
  }
  EXPECT_TRUE((*opened)->drift_tracker().history().empty());
  ASSERT_TRUE((*opened)->Checkpoint().ok());

  const auto snapshots = store::ListSnapshotFiles(dir);
  ASSERT_FALSE(snapshots.empty());
  auto bytes = ReadFile(snapshots.front());
  ASSERT_TRUE(bytes.ok());
  auto snap = store::DecodeSnapshot(*bytes);
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_FALSE(snap->has_drift);
}

TEST(StoreDriftTest, MetricsCountPerRecordTypeOps) {
  const std::string dir = TestDir("op_metrics");
  {
    auto opened =
        store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (const auto& batch : SmallMutationStream()) {
      ASSERT_TRUE((*opened)->Feed(batch).ok());
    }
  }
  const store::StateDirMetrics metrics = store::CollectStateDirMetrics(dir);
  EXPECT_EQ(metrics.journal_records, 3u);
  EXPECT_EQ(metrics.journal_insert_ops, 8u);  // 6+1 batch-0 rows + 1 batch-2
  EXPECT_EQ(metrics.journal_delete_ops, 3u);  // 2 nodes + 1 edge
  EXPECT_EQ(metrics.journal_update_ops, 1u);
  const std::string rendered = metrics.ToString();
  EXPECT_NE(rendered.find("journal ops:"), std::string::npos);
}

// --- CLI: pghive drift. ---

Args MakeArgs(std::vector<std::string> tokens) {
  std::vector<const char*> argv = {"pghive"};
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return Args::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliDriftTest, ReportsHistoryFromNewestSnapshot) {
  const std::string dir = TestDir("cli_drift");
  {
    auto opened =
        store::DurableDiscoverer::OpenOrRecover(dir, FastStoreOptions());
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (const auto& batch : SmallMutationStream()) {
      ASSERT_TRUE((*opened)->Feed(batch).ok());
    }
    ASSERT_TRUE((*opened)->Checkpoint().ok());
  }

  std::ostringstream out;
  Status s = CmdDrift(MakeArgs({"drift", dir}), out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(out.str().find("epochs observed"), std::string::npos);
  EXPECT_NE(out.str().find("epoch 2"), std::string::npos);

  std::ostringstream json_out;
  s = CmdDrift(MakeArgs({"drift", dir, "--format", "json"}), json_out);
  ASSERT_TRUE(s.ok()) << s;
  auto doc = ParseJson(json_out.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE((*doc)["history"].is_array());

  std::ostringstream empty_out;
  s = CmdDrift(MakeArgs({"drift", dir, "--since", "99"}), empty_out);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_NE(empty_out.str().find("no recorded diffs"), std::string::npos);

  std::ostringstream missing_out;
  s = CmdDrift(MakeArgs({"drift", TestDir("cli_drift_missing")}), missing_out);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

// --- Evolution scenarios. ---

TEST(EvolutionTest, AllScenariosApplyCleanlyAndLeaveSurvivors) {
  const auto names = EvolutionScenarioNames();
  const auto scenarios = AllEvolutionScenarios();
  ASSERT_EQ(scenarios.size(), names.size());
  ASSERT_GE(scenarios.size(), 4u);  // the acceptance floor
  for (size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name);
    EXPECT_EQ(scenarios[i].name, names[i]);
    PropertyGraph g;
    size_t deletions = 0;
    for (const MutationBatch& mb : scenarios[i].stream) {
      deletions += mb.mutations.delete_nodes.size() +
                   mb.mutations.delete_edges.size() +
                   mb.mutations.update_nodes.size() +
                   mb.mutations.update_edges.size();
      auto applied = drift::ApplyMutationBatch(&g, mb);
      ASSERT_TRUE(applied.ok()) << applied.status();
    }
    EXPECT_GT(deletions, 0u) << "scenario exercises no mutations";
    auto net = drift::NetSurvivingStream(scenarios[i].stream);
    ASSERT_TRUE(net.ok()) << net.status();
    size_t survivors = 0;
    for (const MutationBatch& mb : *net) survivors += mb.nodes.size();
    EXPECT_GT(survivors, 0u);
    EXPECT_LT(survivors, g.num_nodes());  // something actually retired
  }
  EXPECT_FALSE(MakeEvolutionScenario("nope").ok());
}

TEST(EvolutionTest, SteadyStreamHasConstantShape) {
  const auto stream = MakeSteadyMutationStream(/*num_batches=*/8,
                                               /*per_batch=*/6);
  ASSERT_EQ(stream.size(), 8u);
  PropertyGraph g;
  for (const MutationBatch& mb : stream) {
    auto applied = drift::ApplyMutationBatch(&g, mb);
    ASSERT_TRUE(applied.ok()) << applied.status();
  }
  size_t mutating_batches = 0;
  for (const MutationBatch& mb : stream) {
    if (!mb.mutations.empty()) ++mutating_batches;
  }
  EXPECT_GE(mutating_batches, 4u);
  auto net = drift::NetSurvivingStream(stream);
  ASSERT_TRUE(net.ok()) << net.status();
}

}  // namespace
}  // namespace pghive
