// Tests for the end-to-end PG-HIVE pipeline (Algorithm 1).

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/f1.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

TEST(PipelineTest, Figure1RecoversPaperWalkthrough) {
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(MakeFigure1Graph());
  ASSERT_TRUE(schema.ok());
  // Example 5: Alice's unlabeled cluster merges into Person; the two Post
  // patterns merge -> 4 node types total, no abstract leftovers.
  EXPECT_EQ(schema->node_types.size(), 4u);
  for (const auto& t : schema->node_types) EXPECT_FALSE(t.is_abstract);
  int person = schema->FindNodeTypeByLabels({"Person"});
  ASSERT_GE(person, 0);
  EXPECT_EQ(schema->node_types[person].instances.size(), 3u);  // Bob,John,Alice
  EXPECT_EQ(schema->edge_types.size(), 4u);
}

TEST(PipelineTest, MinHashVariantAgreesOnFigure1) {
  PipelineOptions opt;
  opt.method = ClusteringMethod::kMinHash;
  PgHivePipeline pipeline(opt);
  auto schema = pipeline.DiscoverSchema(MakeFigure1Graph());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->node_types.size(), 4u);
  EXPECT_EQ(schema->edge_types.size(), 4u);
}

TEST(PipelineTest, EmptyGraph) {
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(PropertyGraph());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_types(), 0u);
}

TEST(PipelineTest, NodesOnlyGraph) {
  PropertyGraph g;
  for (int i = 0; i < 20; ++i) {
    g.AddNode({"A"}, {{"x", Value::Int(i)}}, "A");
  }
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->node_types.size(), 1u);
  EXPECT_TRUE(schema->edge_types.empty());
}

TEST(PipelineTest, FullyUnlabeledGraphStillDiscovers) {
  // Two structurally distinct populations without any labels.
  PropertyGraph g;
  for (int i = 0; i < 30; ++i) {
    g.AddNode({}, {{"a", Value::Int(i)}, {"b", Value::Int(i)}}, "TA");
    g.AddNode({}, {{"x", Value::String("s")}, {"y", Value::Double(1.5)}},
              "TB");
  }
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->node_types.size(), 2u);
  EXPECT_TRUE(schema->node_types[0].is_abstract);
  EXPECT_TRUE(schema->node_types[1].is_abstract);
  F1Result f1 = MajorityF1Nodes(g, *schema);
  EXPECT_DOUBLE_EQ(f1.f1, 1.0);
}

TEST(PipelineTest, DeterministicForSeed) {
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  PgHivePipeline p1, p2;
  auto s1 = p1.DiscoverSchema(g);
  auto s2 = p2.DiscoverSchema(g);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->node_types.size(), s2->node_types.size());
  EXPECT_EQ(s1->edge_types.size(), s2->edge_types.size());
}

TEST(PipelineTest, FixedParametersPathWorks) {
  PipelineOptions opt;
  opt.adaptive_parameters = false;
  opt.elsh.bucket_length = 2.0;
  opt.elsh.num_tables = 10;
  PgHivePipeline pipeline(opt);
  auto schema = pipeline.DiscoverSchema(MakeFigure1Graph());
  ASSERT_TRUE(schema.ok());
  EXPECT_GT(schema->num_types(), 0u);
}

TEST(PipelineTest, HashEmbeddingBackendWorks) {
  PipelineOptions opt;
  opt.embedding.backend = EmbeddingBackend::kHash;
  PgHivePipeline pipeline(opt);
  auto schema = pipeline.DiscoverSchema(MakeFigure1Graph());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->node_types.size(), 4u);
}

TEST(PipelineTest, DiagnosticsPopulated) {
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  PgHivePipeline pipeline;
  ASSERT_TRUE(pipeline.DiscoverSchema(g).ok());
  const BatchDiagnostics& d = pipeline.last_diagnostics();
  EXPECT_GT(d.node_clusters, 0u);
  EXPECT_GT(d.edge_clusters, 0u);
  EXPECT_GT(d.node_params.bucket_length, 0.0);
  EXPECT_GE(d.node_params.num_tables, 5);
  EXPECT_LE(d.node_params.num_tables, 35);
}

TEST(PipelineTest, PostProcessToggleSkipsConstraints) {
  PipelineOptions opt;
  opt.post_process = false;
  PgHivePipeline pipeline(opt);
  auto schema = pipeline.DiscoverSchema(MakeFigure1Graph());
  ASSERT_TRUE(schema.ok());
  for (const auto& t : schema->node_types) {
    EXPECT_TRUE(t.constraints.empty());
  }
}

TEST(PipelineTest, TypeCompletenessOnPole) {
  // §4.7 "Type completeness": every instance's labels and properties are
  // covered by its assigned type.
  auto g = GenerateGraph(MakePoleSpec(), {}).value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  // Build instance -> type index.
  std::vector<int> type_of(g.num_nodes(), -1);
  for (size_t t = 0; t < schema->node_types.size(); ++t) {
    for (NodeId id : schema->node_types[t].instances) {
      EXPECT_EQ(type_of[id], -1) << "node assigned twice";
      type_of[id] = static_cast<int>(t);
    }
  }
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    ASSERT_GE(type_of[i], 0) << "node not assigned to any type";
    const auto& t = schema->node_types[type_of[i]];
    for (const auto& l : g.node(i).labels) {
      EXPECT_TRUE(t.labels.count(l));
    }
    for (const auto& [k, v] : g.node(i).properties) {
      EXPECT_TRUE(t.property_keys.count(k));
    }
  }
}

TEST(PipelineTest, CleanLabeledDataPerfectF1) {
  for (const char* name : {"POLE", "LDBC"}) {
    auto spec = DatasetSpecByName(name).value();
    GenerateOptions gen;
    gen.num_nodes = 1000;
    gen.num_edges = 2000;
    auto g = GenerateGraph(spec, gen).value();
    PgHivePipeline pipeline;
    auto schema = pipeline.DiscoverSchema(g);
    ASSERT_TRUE(schema.ok());
    EXPECT_GT(MajorityF1Nodes(g, *schema).f1, 0.99) << name;
    EXPECT_GT(MajorityF1Edges(g, *schema).f1, 0.99) << name;
  }
}

TEST(PipelineTest, RobustToNoiseAndMissingLabels) {
  auto spec = MakeIcijSpec();
  GenerateOptions gen;
  gen.num_nodes = 1500;
  gen.num_edges = 2500;
  auto clean = GenerateGraph(spec, gen).value();
  NoiseOptions nopt;
  nopt.property_removal = 0.2;
  nopt.label_availability = 0.5;
  auto noisy = InjectNoise(clean, nopt).value();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(noisy);
  ASSERT_TRUE(schema.ok());
  EXPECT_GT(MajorityF1Nodes(noisy, *schema).f1, 0.8);
}

TEST(PipelineTest, MethodNames) {
  EXPECT_STREQ(ClusteringMethodName(ClusteringMethod::kElsh), "ELSH");
  EXPECT_STREQ(ClusteringMethodName(ClusteringMethod::kMinHash), "MinHash");
}

}  // namespace
}  // namespace pghive
