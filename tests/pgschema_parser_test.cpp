// Tests for the PG-Schema parser and the ToPgSchema round-trip.

#include <gtest/gtest.h>

#include "core/pgschema_parser.h"
#include "core/pipeline.h"
#include "core/serialization.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

TEST(PgSchemaParserTest, MinimalStrictDocument) {
  auto parsed = ParsePgSchema(
      "CREATE GRAPH TYPE Social STRICT {\n"
      "  (PersonType: Person {name STRING, email OPTIONAL STRING}),\n"
      "  (: Person)-[KnowsType: KNOWS {since OPTIONAL DATE}]->(: Person)"
      " /* cardinality M:N */\n"
      "}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->graph_name, "Social");
  EXPECT_EQ(parsed->mode, PgSchemaMode::kStrict);
  ASSERT_EQ(parsed->schema.node_types.size(), 1u);
  const auto& person = parsed->schema.node_types[0];
  EXPECT_EQ(person.name, "Person");
  EXPECT_EQ(person.labels, (std::set<std::string>{"Person"}));
  EXPECT_TRUE(person.constraints.at("name").mandatory);
  EXPECT_FALSE(person.constraints.at("email").mandatory);
  ASSERT_EQ(parsed->schema.edge_types.size(), 1u);
  const auto& knows = parsed->schema.edge_types[0];
  EXPECT_EQ(knows.name, "Knows");
  EXPECT_EQ(knows.source_labels, (std::set<std::string>{"Person"}));
  EXPECT_EQ(knows.cardinality, SchemaCardinality::kManyToMany);
  EXPECT_EQ(knows.constraints.at("since").type, DataType::kDate);
}

TEST(PgSchemaParserTest, LooseDocumentWithoutConstraints) {
  auto parsed = ParsePgSchema(
      "CREATE GRAPH TYPE G LOOSE {\n"
      "  (AType: A {x, y}),\n"
      "  (BType: B)\n"
      "}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->mode, PgSchemaMode::kLoose);
  ASSERT_EQ(parsed->schema.node_types.size(), 2u);
  EXPECT_EQ(parsed->schema.node_types[0].property_keys,
            (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(parsed->schema.node_types[0].constraints.empty());
  EXPECT_TRUE(parsed->schema.node_types[1].property_keys.empty());
}

TEST(PgSchemaParserTest, MultiLabelAndMultiEndpoint) {
  auto parsed = ParsePgSchema(
      "CREATE GRAPH TYPE G STRICT {\n"
      "  (PostType: Message & Post {content STRING}),\n"
      "  (: Forum | Group)-[HasType: HAS]->(: Message | Post)\n"
      "}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->schema.node_types[0].labels,
            (std::set<std::string>{"Message", "Post"}));
  EXPECT_EQ(parsed->schema.edge_types[0].source_labels,
            (std::set<std::string>{"Forum", "Group"}));
  EXPECT_EQ(parsed->schema.edge_types[0].target_labels,
            (std::set<std::string>{"Message", "Post"}));
}

TEST(PgSchemaParserTest, AbstractTypes) {
  auto parsed = ParsePgSchema(
      "CREATE GRAPH TYPE G STRICT {\n"
      "  (ABSTRACT_0Type ABSTRACT {blob OPTIONAL STRING}),\n"
      "  ()-[ABSTRACT_1Type {w OPTIONAL INT}]->()\n"
      "}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->schema.node_types.size(), 1u);
  EXPECT_TRUE(parsed->schema.node_types[0].is_abstract);
  EXPECT_EQ(parsed->schema.node_types[0].name, "ABSTRACT_0");
  ASSERT_EQ(parsed->schema.edge_types.size(), 1u);
  EXPECT_TRUE(parsed->schema.edge_types[0].is_abstract);
  EXPECT_TRUE(parsed->schema.edge_types[0].source_labels.empty());
}

TEST(PgSchemaParserTest, EmptyBody) {
  auto parsed = ParsePgSchema("CREATE GRAPH TYPE Empty LOOSE {\n}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->schema.num_types(), 0u);
}

TEST(PgSchemaParserTest, Errors) {
  EXPECT_FALSE(ParsePgSchema("").ok());
  EXPECT_FALSE(ParsePgSchema("CREATE GRAPH Social STRICT {}").ok());
  EXPECT_FALSE(ParsePgSchema("CREATE GRAPH TYPE G SEMI {}").ok());
  EXPECT_FALSE(ParsePgSchema("CREATE GRAPH TYPE G STRICT {").ok());
  EXPECT_FALSE(
      ParsePgSchema("CREATE GRAPH TYPE G STRICT { (T: A) } extra").ok());
  EXPECT_FALSE(
      ParsePgSchema("CREATE GRAPH TYPE G STRICT { (T: A {x QUANTUM}) }")
          .ok());
  EXPECT_FALSE(
      ParsePgSchema("CREATE GRAPH TYPE G STRICT { (: A)-[E: R]->(: B /* x")
          .ok());
}

TEST(PgSchemaParserTest, UnknownCommentIgnored) {
  auto parsed = ParsePgSchema(
      "CREATE GRAPH TYPE G STRICT {\n"
      "  (: A)-[RType: R]->(: B) /* just a remark */\n"
      "}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->schema.edge_types[0].cardinality,
            SchemaCardinality::kUnknown);
}

// ---------- round-trips ----------

void ExpectSchemaEquivalent(const SchemaGraph& a, const SchemaGraph& b,
                            bool with_constraints) {
  ASSERT_EQ(a.node_types.size(), b.node_types.size());
  ASSERT_EQ(a.edge_types.size(), b.edge_types.size());
  for (size_t i = 0; i < a.node_types.size(); ++i) {
    EXPECT_EQ(a.node_types[i].labels, b.node_types[i].labels);
    EXPECT_EQ(a.node_types[i].property_keys, b.node_types[i].property_keys);
    EXPECT_EQ(a.node_types[i].is_abstract, b.node_types[i].is_abstract);
    if (with_constraints) {
      for (const auto& [key, c] : a.node_types[i].constraints) {
        const auto& other = b.node_types[i].constraints.at(key);
        EXPECT_EQ(other.type, c.type) << key;
        EXPECT_EQ(other.mandatory, c.mandatory) << key;
      }
    }
  }
  for (size_t i = 0; i < a.edge_types.size(); ++i) {
    EXPECT_EQ(a.edge_types[i].labels, b.edge_types[i].labels);
    EXPECT_EQ(a.edge_types[i].property_keys, b.edge_types[i].property_keys);
    EXPECT_EQ(a.edge_types[i].source_labels, b.edge_types[i].source_labels);
    EXPECT_EQ(a.edge_types[i].target_labels, b.edge_types[i].target_labels);
    // LOOSE mode omits the cardinality comment; only STRICT round-trips it.
    if (with_constraints) {
      EXPECT_EQ(a.edge_types[i].cardinality, b.edge_types[i].cardinality);
    }
  }
}

TEST(PgSchemaRoundTripTest, Figure1Strict) {
  PgHivePipeline pipeline;
  SchemaGraph schema = pipeline.DiscoverSchema(MakeFigure1Graph()).value();
  std::string text = ToPgSchema(schema, "Fig1", PgSchemaMode::kStrict);
  auto parsed = ParsePgSchema(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  ExpectSchemaEquivalent(schema, parsed->schema, /*with_constraints=*/true);
}

TEST(PgSchemaRoundTripTest, Figure1Loose) {
  PgHivePipeline pipeline;
  SchemaGraph schema = pipeline.DiscoverSchema(MakeFigure1Graph()).value();
  std::string text = ToPgSchema(schema, "Fig1", PgSchemaMode::kLoose);
  auto parsed = ParsePgSchema(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_EQ(parsed->mode, PgSchemaMode::kLoose);
  ExpectSchemaEquivalent(schema, parsed->schema, /*with_constraints=*/false);
}

// Malformed inputs must produce clean errors — never a crash, hang or
// false accept. Exercises truncations of a valid document at every byte,
// plus a corpus of structurally broken and garbage documents.
TEST(PgSchemaParserTest, TruncatedDocumentsAlwaysError) {
  const std::string valid =
      "CREATE GRAPH TYPE Social STRICT {\n"
      "  (PersonType: Person {name STRING, email OPTIONAL STRING}),\n"
      "  (: Person)-[KnowsType: KNOWS {since OPTIONAL DATE}]->(: Person)"
      " /* cardinality M:N */\n"
      "}\n";
  ASSERT_TRUE(ParsePgSchema(valid).ok());
  for (size_t len = 0; len + 2 < valid.size(); ++len) {
    auto parsed = ParsePgSchema(valid.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(PgSchemaParserTest, MalformedDocumentsError) {
  const char* corpus[] = {
      "",
      "   \n\t  ",
      "CREATE",
      "CREATE GRAPH TYPE",
      "CREATE GRAPH TYPE G STRICT",
      "CREATE GRAPH TYPE G BOGUSMODE { (T: A) }",
      "CREATE GRAPH TYPE G STRICT { (T: A) ",      // unclosed body
      "CREATE GRAPH TYPE G STRICT { (T: A {p NOTATYPE}) }",
      "CREATE GRAPH TYPE G STRICT { (T: A {p STRING,}) }",  // dangling comma
      "CREATE GRAPH TYPE G STRICT { (: A)-[E: R]-(: B) }",  // bad arrow
      "CREATE GRAPH TYPE G STRICT { ,, }",
      "DROP GRAPH TYPE G STRICT { (T: A) }",
      "CREATE GRAPH TYPE G STRICT { (T: A) } trailing garbage",
      "{}",
      "\x00\x01\x02\x03",
      "CREATE GRAPH TYPE G STRICT { (((((((((( }",
      "/* comment that never ends",
  };
  for (const char* doc : corpus) {
    auto parsed = ParsePgSchema(doc);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << doc;
  }
  // 1 MiB of noise: must error in reasonable time, not crash or OOM.
  std::string big(1 << 20, '(');
  EXPECT_FALSE(ParsePgSchema(big).ok());
}

class PgSchemaDatasetRoundTrip : public testing::TestWithParam<std::string> {};

TEST_P(PgSchemaDatasetRoundTrip, DiscoveredSchemaRoundTrips) {
  auto spec = DatasetSpecByName(GetParam()).value();
  GenerateOptions gen;
  gen.num_nodes = 500;
  gen.num_edges = 900;
  auto g = GenerateGraph(spec, gen).value();
  PgHivePipeline pipeline;
  SchemaGraph schema = pipeline.DiscoverSchema(g).value();
  std::string text = ToPgSchema(schema, spec.name, PgSchemaMode::kStrict);
  auto parsed = ParsePgSchema(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectSchemaEquivalent(schema, parsed->schema, /*with_constraints=*/true);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PgSchemaDatasetRoundTrip,
                         testing::Values("POLE", "MB6", "HET.IO", "ICIJ",
                                         "LDBC"));

}  // namespace
}  // namespace pghive
