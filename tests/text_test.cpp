// Unit tests for the embedding substrate: vocabulary, Word2Vec, hash
// embedder and the label-embedding facade.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.h"
#include "text/hash_embedder.h"
#include "text/label_embedder.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"

namespace pghive {
namespace {

double Norm(const std::vector<float>& v) {
  double sq = 0;
  for (float x : v) sq += x * x;
  return std::sqrt(sq);
}

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  double na = Norm(a), nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0;
  return dot / (na * nb);
}

// ---------- Vocabulary ----------

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary v;
  int32_t a = v.Add("alpha");
  int32_t b = v.Add("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Lookup("alpha"), a);
  EXPECT_EQ(v.Lookup("missing"), Vocabulary::kUnknown);
  EXPECT_EQ(v.token(a), "alpha");
}

TEST(VocabularyTest, CountsAccumulate) {
  Vocabulary v;
  int32_t a = v.Add("x");
  v.Add("x");
  v.Add("x");
  v.Add("y");
  EXPECT_EQ(v.count(a), 3u);
  EXPECT_EQ(v.total_count(), 4u);
  EXPECT_EQ(v.size(), 2u);
}

// ---------- Word2Vec ----------

TEST(Word2VecTest, RejectsBadOptions) {
  Word2VecOptions opt;
  opt.dimension = 0;
  Word2Vec w2v(opt);
  EXPECT_FALSE(w2v.Train({{"a"}}).ok());
}

TEST(Word2VecTest, RejectsEmptyCorpus) {
  Word2Vec w2v;
  EXPECT_FALSE(w2v.Train({}).ok());
}

TEST(Word2VecTest, TrainsAndEmbedsUnitVectors) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train({{"a", "b"}, {"a", "c"}, {"b", "c"}}).ok());
  EXPECT_TRUE(w2v.trained());
  auto va = w2v.Embed("a");
  EXPECT_EQ(va.size(), 16u);
  EXPECT_NEAR(Norm(va), 1.0, 1e-4);
}

TEST(Word2VecTest, UnknownTokenIsZero) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train({{"a", "b"}}).ok());
  EXPECT_NEAR(Norm(w2v.Embed("zzz")), 0.0, 1e-9);
}

TEST(Word2VecTest, DeterministicAcrossRuns) {
  std::vector<std::vector<std::string>> corpus = {{"a", "b"}, {"b", "c"}};
  Word2Vec m1, m2;
  ASSERT_TRUE(m1.Train(corpus).ok());
  ASSERT_TRUE(m2.Train(corpus).ok());
  EXPECT_EQ(m1.Embed("a"), m2.Embed("a"));
}

TEST(Word2VecTest, SharedContextTokensMoreSimilar) {
  // Skip-gram aligns INPUT vectors for tokens with similar context
  // distributions: "sun" and "sol" share contexts, "rock" does not.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 80; ++i) {
    corpus.push_back({"sun", "sky"});
    corpus.push_back({"sol", "sky"});
    corpus.push_back({"sun", "light"});
    corpus.push_back({"sol", "light"});
    corpus.push_back({"rock", "ground"});
    corpus.push_back({"rock", "stone"});
  }
  Word2VecOptions opt;
  opt.epochs = 25;
  Word2Vec w2v(opt);
  ASSERT_TRUE(w2v.Train(corpus).ok());
  EXPECT_GT(w2v.Similarity("sun", "sol"), 0.5);
  EXPECT_GT(w2v.Similarity("sun", "sol"), w2v.Similarity("sun", "rock"));
}

TEST(Word2VecTest, SingletonCorpusYieldsDistinctVectors) {
  // The PG-HIVE corpus is one singleton sentence per label token; no
  // training pairs exist, but every token must still embed distinctly.
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train({{"Person"}, {"Organization"}, {"Post"}}).ok());
  double cos = std::abs(Cosine(w2v.Embed("Person"), w2v.Embed("Post")));
  EXPECT_LT(cos, 0.95);
  EXPECT_NEAR(Norm(w2v.Embed("Person")), 1.0, 1e-4);
}

// ---------- HashEmbedder ----------

TEST(HashEmbedderTest, UnitNormAndDeterministic) {
  HashEmbedder e(32, 5);
  auto v1 = e.Embed("token");
  auto v2 = e.Embed("token");
  EXPECT_EQ(v1, v2);
  EXPECT_NEAR(Norm(v1), 1.0, 1e-6);
}

TEST(HashEmbedderTest, DistinctTokensNearOrthogonal) {
  HashEmbedder e(64, 0);
  auto a = e.Embed("alpha");
  auto b = e.Embed("beta");
  EXPECT_LT(std::abs(Cosine(a, b)), 0.5);
}

TEST(HashEmbedderTest, SeedChangesProjection) {
  HashEmbedder e1(16, 1), e2(16, 2);
  EXPECT_NE(e1.Embed("x"), e2.Embed("x"));
}

// ---------- LabelEmbedder ----------

TEST(LabelEmbedderTest, UnlabeledIsZeroVector) {
  LabelEmbedder embedder;
  ASSERT_TRUE(embedder.Train({{"A"}}).ok());
  auto v = embedder.EmbedLabels({});
  EXPECT_NEAR(Norm(v), 0.0, 1e-9);
  EXPECT_EQ(static_cast<int>(v.size()), embedder.dimension());
}

TEST(LabelEmbedderTest, MultiLabelCanonicalization) {
  LabelEmbedder embedder;
  ASSERT_TRUE(embedder.Train({{"A&B"}}).ok());
  // The same set in different order produces the same vector.
  EXPECT_EQ(embedder.EmbedLabels({"A", "B"}), embedder.EmbedLabels({"B", "A"}));
  // And matches the canonical token directly.
  EXPECT_EQ(embedder.EmbedLabels({"A", "B"}), embedder.EmbedToken("A&B"));
}

TEST(LabelEmbedderTest, UnknownTokenFallsBackToHash) {
  LabelEmbedder embedder;
  ASSERT_TRUE(embedder.Train({{"Known"}}).ok());
  auto v = embedder.EmbedToken("NeverSeen");
  EXPECT_NEAR(Norm(v), 1.0, 1e-5);  // deterministic hash vector, not zero
  EXPECT_EQ(v, embedder.EmbedToken("NeverSeen"));
}

TEST(LabelEmbedderTest, HashBackendNeedsNoTraining) {
  LabelEmbedderOptions opt;
  opt.backend = EmbeddingBackend::kHash;
  LabelEmbedder embedder(opt);
  auto v = embedder.EmbedLabels({"X"});
  EXPECT_NEAR(Norm(v), 1.0, 1e-5);
}

TEST(LabelEmbedderTest, EmptyCorpusDegradesGracefully) {
  LabelEmbedder embedder;
  ASSERT_TRUE(embedder.Train({}).ok());  // fully unlabeled graph
  EXPECT_NEAR(Norm(embedder.EmbedLabels({})), 0.0, 1e-9);
  EXPECT_NEAR(Norm(embedder.EmbedToken("anything")), 1.0, 1e-5);
}

TEST(LabelEmbedderTest, BuildLabelCorpusFromGraph) {
  PropertyGraph g = MakeFigure1Graph();
  auto corpus = BuildLabelCorpus(g);
  EXPECT_FALSE(corpus.empty());
  // Unlabeled Alice contributes no node sentence; labeled nodes do.
  size_t singletons = 0;
  for (const auto& sent : corpus) singletons += sent.size() == 1;
  EXPECT_GT(singletons, 0u);
}

}  // namespace
}  // namespace pghive
