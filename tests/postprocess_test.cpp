// Unit tests for post-processing: property constraints, datatype inference
// and cardinality computation (paper §4.4).

#include <gtest/gtest.h>

#include "core/cardinality.h"
#include "core/constraints.h"
#include "core/datatype_inference.h"
#include "core/pipeline.h"
#include "graph/graph_builder.h"

namespace pghive {
namespace {

// Builds a graph and a schema whose single node type owns all nodes.
struct Fixture {
  PropertyGraph graph;
  SchemaGraph schema;

  void AddTypedNodes(const std::string& type,
                     std::vector<std::map<std::string, Value>> props) {
    SchemaNodeType t;
    t.name = type;
    t.labels = {type};
    for (auto& p : props) {
      for (const auto& [k, v] : p) t.property_keys.insert(k);
      NodeId id = graph.AddNode({type}, std::move(p), type);
      t.instances.push_back(id);
    }
    schema.node_types.push_back(std::move(t));
  }
};

// ---------- constraints ----------

TEST(ConstraintsTest, MandatoryWhenPresentEverywhere) {
  Fixture f;
  f.AddTypedNodes("T", {{{"a", Value::Int(1)}, {"b", Value::Int(2)}},
                        {{"a", Value::Int(3)}}});
  InferPropertyConstraints(f.graph, &f.schema);
  const auto& cs = f.schema.node_types[0].constraints;
  EXPECT_TRUE(cs.at("a").mandatory);
  EXPECT_FALSE(cs.at("b").mandatory);
}

TEST(ConstraintsTest, FrequencyComputation) {
  Fixture f;
  f.AddTypedNodes("T", {{{"a", Value::Int(1)}},
                        {{"a", Value::Int(2)}},
                        {{"b", Value::Int(3)}},
                        {}});
  EXPECT_DOUBLE_EQ(
      NodePropertyFrequency(f.graph, f.schema.node_types[0], "a"), 0.5);
  EXPECT_DOUBLE_EQ(
      NodePropertyFrequency(f.graph, f.schema.node_types[0], "b"), 0.25);
  EXPECT_DOUBLE_EQ(
      NodePropertyFrequency(f.graph, f.schema.node_types[0], "zz"), 0.0);
}

TEST(ConstraintsTest, InstanceLessTypeAllOptional) {
  Fixture f;
  SchemaNodeType t;
  t.name = "Empty";
  t.property_keys = {"x"};
  f.schema.node_types.push_back(t);
  InferPropertyConstraints(f.graph, &f.schema);
  EXPECT_FALSE(f.schema.node_types[0].constraints.at("x").mandatory);
}

TEST(ConstraintsTest, EdgeConstraints) {
  PropertyGraph g;
  NodeId a = g.AddNode({"A"}, {});
  NodeId b = g.AddNode({"B"}, {});
  EdgeId e1 = g.AddEdge(a, b, {"R"}, {{"w", Value::Int(1)}}).value();
  EdgeId e2 = g.AddEdge(a, b, {"R"}, {}).value();
  SchemaGraph s;
  SchemaEdgeType t;
  t.name = "R";
  t.labels = {"R"};
  t.property_keys = {"w"};
  t.instances = {e1, e2};
  s.edge_types.push_back(t);
  InferPropertyConstraints(g, &s);
  EXPECT_FALSE(s.edge_types[0].constraints.at("w").mandatory);
  EXPECT_DOUBLE_EQ(EdgePropertyFrequency(g, s.edge_types[0], "w"), 0.5);
}

// ---------- datatype inference ----------

TEST(DataTypeInferenceTest, FoldsToMostSpecificType) {
  Value i = Value::Int(1), d = Value::Double(2.5), s = Value::String("x");
  EXPECT_EQ(FoldValueTypes({&i}), DataType::kInt);
  EXPECT_EQ(FoldValueTypes({&i, &d}), DataType::kDouble);
  EXPECT_EQ(FoldValueTypes({&i, &s}), DataType::kString);
  EXPECT_EQ(FoldValueTypes({}), DataType::kString);
}

TEST(DataTypeInferenceTest, FullScanAssignsTypes) {
  Fixture f;
  f.AddTypedNodes("T", {{{"age", Value::Int(30)},
                         {"score", Value::Double(1.5)},
                         {"active", Value::Bool(true)},
                         {"born", Value::Date("1990-01-01")}},
                        {{"age", Value::Int(31)}}});
  InferDataTypes(f.graph, {}, &f.schema);
  const auto& cs = f.schema.node_types[0].constraints;
  EXPECT_EQ(cs.at("age").type, DataType::kInt);
  EXPECT_EQ(cs.at("score").type, DataType::kDouble);
  EXPECT_EQ(cs.at("active").type, DataType::kBool);
  EXPECT_EQ(cs.at("born").type, DataType::kDate);
}

TEST(DataTypeInferenceTest, MixedValuesGeneralize) {
  Fixture f;
  f.AddTypedNodes("T", {{{"x", Value::Int(1)}},
                        {{"x", Value::Double(2.5)}},
                        {{"y", Value::Int(3)}},
                        {{"y", Value::String("oops")}}});
  InferDataTypes(f.graph, {}, &f.schema);
  const auto& cs = f.schema.node_types[0].constraints;
  EXPECT_EQ(cs.at("x").type, DataType::kDouble);
  EXPECT_EQ(cs.at("y").type, DataType::kString);
}

TEST(DataTypeInferenceTest, SamplingModeStillCompatibleOnUniformData) {
  Fixture f;
  std::vector<std::map<std::string, Value>> props;
  for (int i = 0; i < 3000; ++i) {
    props.push_back({{"n", Value::Int(i)}});
  }
  f.AddTypedNodes("T", std::move(props));
  DataTypeInferenceOptions opt;
  opt.sample = true;
  opt.min_sample = 100;
  InferDataTypes(f.graph, opt, &f.schema);
  EXPECT_EQ(f.schema.node_types[0].constraints.at("n").type, DataType::kInt);
}

TEST(DataTypeInferenceTest, SamplingCanMissRareOutlier) {
  // 5000 ints and a single string outlier: a 10% sample usually misses it,
  // which is exactly the error Figure 8 measures. We only require that the
  // sampled result is one of the two defensible answers.
  Fixture f;
  std::vector<std::map<std::string, Value>> props;
  for (int i = 0; i < 5000; ++i) props.push_back({{"v", Value::Int(i)}});
  props.push_back({{"v", Value::String("outlier")}});
  f.AddTypedNodes("T", std::move(props));

  SchemaGraph full_schema = f.schema;
  InferDataTypes(f.graph, {}, &full_schema);
  EXPECT_EQ(full_schema.node_types[0].constraints.at("v").type,
            DataType::kString);  // full scan sees the outlier

  DataTypeInferenceOptions opt;
  opt.sample = true;
  opt.min_sample = 100;
  opt.sample_fraction = 0.02;
  InferDataTypes(f.graph, opt, &f.schema);
  DataType sampled = f.schema.node_types[0].constraints.at("v").type;
  EXPECT_TRUE(sampled == DataType::kInt || sampled == DataType::kString);
}

// ---------- cardinalities ----------

TEST(CardinalityTest, Classification) {
  EXPECT_EQ(ClassifyCardinality(1, 1), SchemaCardinality::kZeroOrOne);
  EXPECT_EQ(ClassifyCardinality(1, 5), SchemaCardinality::kManyToOne);
  EXPECT_EQ(ClassifyCardinality(5, 1), SchemaCardinality::kOneToMany);
  EXPECT_EQ(ClassifyCardinality(3, 3), SchemaCardinality::kManyToMany);
  EXPECT_EQ(ClassifyCardinality(0, 0), SchemaCardinality::kUnknown);
}

TEST(CardinalityTest, WorksAtExampleEight) {
  // Example 8: WORKS_AT connects each Person to exactly one Org, an Org has
  // multiple employees -> N:1.
  PropertyGraph g;
  NodeId p1 = g.AddNode({"Person"}, {});
  NodeId p2 = g.AddNode({"Person"}, {});
  NodeId org = g.AddNode({"Org"}, {});
  SchemaGraph s;
  SchemaEdgeType t;
  t.name = "WORKS_AT";
  t.instances.push_back(g.AddEdge(p1, org, {"WORKS_AT"}, {}).value());
  t.instances.push_back(g.AddEdge(p2, org, {"WORKS_AT"}, {}).value());
  s.edge_types.push_back(t);
  ComputeCardinalities(g, &s);
  EXPECT_EQ(s.edge_types[0].cardinality, SchemaCardinality::kManyToOne);
  EXPECT_EQ(s.edge_types[0].max_out_degree, 1u);
  EXPECT_EQ(s.edge_types[0].max_in_degree, 2u);
}

TEST(CardinalityTest, DistinctTargetsNotParallelEdges) {
  // Two parallel edges to the SAME target count as one distinct target.
  PropertyGraph g;
  NodeId a = g.AddNode({"A"}, {});
  NodeId b = g.AddNode({"B"}, {});
  SchemaGraph s;
  SchemaEdgeType t;
  t.instances.push_back(g.AddEdge(a, b, {"R"}, {}).value());
  t.instances.push_back(g.AddEdge(a, b, {"R"}, {}).value());
  s.edge_types.push_back(t);
  ComputeCardinalities(g, &s);
  EXPECT_EQ(s.edge_types[0].max_out_degree, 1u);
  EXPECT_EQ(s.edge_types[0].cardinality, SchemaCardinality::kZeroOrOne);
}

TEST(CardinalityTest, ManyToMany) {
  PropertyGraph g;
  NodeId a1 = g.AddNode({"A"}, {});
  NodeId a2 = g.AddNode({"A"}, {});
  NodeId b1 = g.AddNode({"B"}, {});
  NodeId b2 = g.AddNode({"B"}, {});
  SchemaGraph s;
  SchemaEdgeType t;
  for (auto [x, y] : {std::pair{a1, b1}, {a1, b2}, {a2, b1}, {a2, b2}}) {
    t.instances.push_back(g.AddEdge(x, y, {"R"}, {}).value());
  }
  s.edge_types.push_back(t);
  ComputeCardinalities(g, &s);
  EXPECT_EQ(s.edge_types[0].cardinality, SchemaCardinality::kManyToMany);
}

TEST(CardinalityTest, EmptyEdgeTypeUnknown) {
  PropertyGraph g;
  SchemaGraph s;
  s.edge_types.emplace_back();
  ComputeCardinalities(g, &s);
  EXPECT_EQ(s.edge_types[0].cardinality, SchemaCardinality::kUnknown);
}

// ---------- full post-processing via pipeline ----------

TEST(PostProcessTest, Figure1EndToEnd) {
  PropertyGraph g = MakeFigure1Graph();
  PgHivePipeline pipeline;
  auto schema = pipeline.DiscoverSchema(g);
  ASSERT_TRUE(schema.ok());
  int person = schema->FindNodeTypeByLabels({"Person"});
  ASSERT_GE(person, 0);
  const auto& cs = schema->node_types[person].constraints;
  // Example 6: name, gender, bday mandatory for Person (Alice included).
  EXPECT_TRUE(cs.at("name").mandatory);
  EXPECT_TRUE(cs.at("gender").mandatory);
  EXPECT_TRUE(cs.at("bday").mandatory);
  // Example 7: bday inferred as a date.
  EXPECT_EQ(cs.at("bday").type, DataType::kDate);
  int post = schema->FindNodeTypeByLabels({"Post"});
  ASSERT_GE(post, 0);
  EXPECT_FALSE(schema->node_types[post].constraints.at("imgFile").mandatory);
}

}  // namespace
}  // namespace pghive
