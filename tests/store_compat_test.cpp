// Backward-compatibility suite for the durable state formats.
//
// The fixture under tests/golden/v1_state/ is a complete state directory
// written by the PGHS/PGHJ **version-1** code (the pre-interning seed): a
// v1 snapshot covering 4 applied batches plus a v1 journal segment holding
// 2 more batches. Current code must (a) load the v1 snapshot file directly
// and (b) recover the whole directory — replaying the v1 journal records —
// to the exact schema the original run produced (committed as
// v1_state.expected.json).
//
// Regenerate ONLY from a build that still writes the old formats:
//   PGHIVE_REGEN_GOLDEN=1 ./store_compat_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/schema_json.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "store/state_store.h"

namespace pghive {
namespace store {
namespace {

#ifndef PGHIVE_GOLDEN_DIR
#error "PGHIVE_GOLDEN_DIR must be defined by the build"
#endif

const char* kFixtureDir = PGHIVE_GOLDEN_DIR "/v1_state";
const char* kExpectedJson = PGHIVE_GOLDEN_DIR "/v1_state.expected.json";

bool RegenMode() {
  const char* v = std::getenv("PGHIVE_REGEN_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The deterministic workload the fixture holds: POLE at a small scale,
// streamed as 6 endpoint-closed batches, checkpoint every 4.
PropertyGraph FixtureGraph() {
  GenerateOptions gen;
  gen.num_nodes = 600;
  gen.num_edges = 1100;
  return GenerateGraph(MakePoleSpec(), gen).value();
}

StoreOptions FixtureOptions() {
  StoreOptions opt;
  opt.checkpoint_every_batches = 4;
  opt.checkpoint_every_bytes = 0;
  opt.fsync = false;
  return opt;
}

std::string SchemaJsonWithInstances(const SchemaGraph& s) {
  SchemaJsonOptions opt;
  opt.include_instances = true;
  opt.pretty = true;
  return SchemaToJson(s, opt);
}

// Copies the committed fixture into a scratch dir (recovery truncates torn
// tails and may write snapshots; the fixture itself must stay pristine).
std::string CopyFixtureToTemp() {
  namespace fs = std::filesystem;
  fs::path dst =
      fs::temp_directory_path() /
      ("pghive_v1_state_" + std::to_string(::getpid()));
  fs::remove_all(dst);
  fs::create_directories(dst);
  for (const auto& entry : fs::directory_iterator(kFixtureDir)) {
    fs::copy_file(entry.path(), dst / entry.path().filename());
  }
  return dst.string();
}

TEST(StoreCompatTest, V1StateFixture) {
  namespace fs = std::filesystem;
  if (RegenMode()) {
    fs::remove_all(kFixtureDir);
    fs::create_directories(kFixtureDir);
    PropertyGraph g = FixtureGraph();
    std::vector<BatchPayload> batches = MakeStreamBatches(g, 6);
    ASSERT_EQ(batches.size(), 6u);
    auto st = DurableDiscoverer::OpenOrRecover(kFixtureDir, FixtureOptions());
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    for (const auto& b : batches) {
      ASSERT_TRUE((*st)->Feed(b).ok());
    }
    // 6 feeds with checkpoint_every_batches=4: snapshot at batch 4, journal
    // records 4 and 5 left pending for replay.
    std::ofstream(kExpectedJson, std::ios::binary)
        << SchemaJsonWithInstances((*st)->schema());
    ASSERT_FALSE(ListSnapshotFiles(kFixtureDir).empty());
    ASSERT_FALSE(ListJournalFiles(kFixtureDir).empty());
    return;
  }

  ASSERT_TRUE(fs::exists(kFixtureDir))
      << "missing fixture; regenerate from a v1 build";
  const std::string expected = ReadFileOrDie(kExpectedJson);

  // (a) The v1 snapshot file alone must decode.
  std::vector<std::string> snapshots = ListSnapshotFiles(kFixtureDir);
  ASSERT_FALSE(snapshots.empty());
  auto snap = ReadSnapshotFile(snapshots.front());
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->applied_batches, 4u);
  EXPECT_GT(snap->graph.num_nodes(), 0u);

  // (b) Full recovery: v1 snapshot + v1 journal replay converge to the
  // exact schema of the original uninterrupted run.
  const std::string dir = CopyFixtureToTemp();
  RecoveryReport report;
  auto st = DurableDiscoverer::OpenOrRecover(dir, FixtureOptions(), &report);
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(report.replayed_batches, 2u) << report.ToString();
  EXPECT_EQ((*st)->batches_applied(), 6u);
  EXPECT_EQ(SchemaJsonWithInstances((*st)->schema()), expected);

  // The recovered graph must equal the graph a fresh, uninterrupted feed of
  // the same batches accumulates (current formats end-to-end).
  const std::string fresh_dir = dir + ".fresh";
  fs::remove_all(fresh_dir);
  auto fresh = DurableDiscoverer::OpenOrRecover(fresh_dir, FixtureOptions());
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  for (const auto& b : MakeStreamBatches(FixtureGraph(), 6)) {
    ASSERT_TRUE((*fresh)->Feed(b).ok());
  }
  EXPECT_TRUE(GraphsEqual((*st)->graph(), (*fresh)->graph()));
  EXPECT_EQ(SchemaJsonWithInstances((*fresh)->schema()), expected);
  fs::remove_all(dir);
  fs::remove_all(fresh_dir);
}

}  // namespace
}  // namespace store
}  // namespace pghive
