// Unit tests for the property graph substrate: Value, PropertyGraph,
// builder, statistics and CSV I/O.

#include <gtest/gtest.h>

#include "graph/csv_io.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "graph/property_graph.h"
#include "graph/value.h"

namespace pghive {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(5).type(), DataType::kInt);
  EXPECT_EQ(Value::Double(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::String("x").type(), DataType::kString);
  EXPECT_EQ(Value::Date("2020-01-01").type(), DataType::kDate);
  EXPECT_EQ(Value::Timestamp("2020-01-01T10:00:00").type(),
            DataType::kTimestamp);
  EXPECT_TRUE(Value().is_null());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::String("abc").AsString(), "abc");
}

TEST(ValueTest, ToTextLexicalForms) {
  EXPECT_EQ(Value::Int(42).ToText(), "42");
  EXPECT_EQ(Value::Bool(false).ToText(), "false");
  EXPECT_EQ(Value::Date("1999-12-19").ToText(), "1999-12-19");
  EXPECT_EQ(Value().ToText(), "");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Int(2));
  EXPECT_FALSE(Value::String("1") == Value::Int(1));
  // Same lexical text, different tag -> different values.
  EXPECT_FALSE(Value::Date("2020-01-01") == Value::String("2020-01-01"));
}

TEST(ValueTest, InferDataTypePriority) {
  EXPECT_EQ(InferDataTypeFromText("123"), DataType::kInt);
  EXPECT_EQ(InferDataTypeFromText("-45"), DataType::kInt);
  EXPECT_EQ(InferDataTypeFromText("1.5"), DataType::kDouble);
  EXPECT_EQ(InferDataTypeFromText("1e3"), DataType::kDouble);
  EXPECT_EQ(InferDataTypeFromText("true"), DataType::kBool);
  EXPECT_EQ(InferDataTypeFromText("FALSE"), DataType::kBool);
  EXPECT_EQ(InferDataTypeFromText("2021-03-04"), DataType::kDate);
  EXPECT_EQ(InferDataTypeFromText("2021-03-04T05:06:07"),
            DataType::kTimestamp);
  EXPECT_EQ(InferDataTypeFromText("hello"), DataType::kString);
  EXPECT_EQ(InferDataTypeFromText(""), DataType::kString);
  // Near-misses fall back to string.
  EXPECT_EQ(InferDataTypeFromText("2021-3-04"), DataType::kString);
  EXPECT_EQ(InferDataTypeFromText("12abc"), DataType::kString);
}

TEST(ValueTest, ParseValueRoundTrip) {
  EXPECT_EQ(ParseValue("17").AsInt(), 17);
  EXPECT_DOUBLE_EQ(ParseValue("2.25").AsDouble(), 2.25);
  EXPECT_TRUE(ParseValue("true").AsBool());
  EXPECT_EQ(ParseValue("2020-05-06").type(), DataType::kDate);
  EXPECT_EQ(ParseValue("plain text").AsString(), "plain text");
}

TEST(ValueTest, GeneralizeDataType) {
  EXPECT_EQ(GeneralizeDataType(DataType::kInt, DataType::kInt),
            DataType::kInt);
  EXPECT_EQ(GeneralizeDataType(DataType::kInt, DataType::kDouble),
            DataType::kDouble);
  EXPECT_EQ(GeneralizeDataType(DataType::kDouble, DataType::kInt),
            DataType::kDouble);
  EXPECT_EQ(GeneralizeDataType(DataType::kDate, DataType::kTimestamp),
            DataType::kTimestamp);
  EXPECT_EQ(GeneralizeDataType(DataType::kInt, DataType::kBool),
            DataType::kString);
  EXPECT_EQ(GeneralizeDataType(DataType::kDate, DataType::kInt),
            DataType::kString);
}

TEST(ValueTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeGqlName(DataType::kInt), "INT");
  EXPECT_STREQ(DataTypeGqlName(DataType::kTimestamp), "TIMESTAMP");
  EXPECT_STREQ(DataTypeXsdName(DataType::kDouble), "xs:double");
  EXPECT_STREQ(DataTypeName(DataType::kBool), "Bool");
}

// ---------- PropertyGraph ----------

TEST(PropertyGraphTest, AddNodesAndEdges) {
  PropertyGraph g;
  NodeId a = g.AddNode({"A"}, {{"x", Value::Int(1)}}, "TA");
  NodeId b = g.AddNode({}, {});
  ASSERT_EQ(g.num_nodes(), 2u);
  auto e = g.AddEdge(a, b, {"REL"}, {{"w", Value::Double(0.5)}}, "TR");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(*e).source, a);
  EXPECT_EQ(g.edge(*e).target, b);
  EXPECT_TRUE(g.node(a).HasProperty("x"));
  EXPECT_FALSE(g.node(b).HasProperty("x"));
}

TEST(PropertyGraphTest, AddEdgeWithBadEndpointFails) {
  PropertyGraph g;
  g.AddNode({"A"}, {});
  auto e = g.AddEdge(0, 99, {"R"}, {});
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(PropertyGraphTest, PropertyKeysSortedAndDistinct) {
  PropertyGraph g;
  g.AddNode({"A"}, {{"z", Value::Int(1)}, {"a", Value::Int(2)}});
  g.AddNode({"B"}, {{"a", Value::Int(3)}, {"m", Value::Int(4)}});
  auto keys = g.NodePropertyKeys();
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "m", "z"}));
}

TEST(PropertyGraphTest, LabelsCollected) {
  PropertyGraph g;
  g.AddNode({"B", "A"}, {});
  g.AddNode({"C"}, {});
  g.AddNode({}, {});
  EXPECT_EQ(g.NodeLabels(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(PropertyGraphTest, PatternCounting) {
  PropertyGraph g;
  // Two nodes with same (labels, keys) -> one pattern; a third differs.
  g.AddNode({"A"}, {{"x", Value::Int(1)}});
  g.AddNode({"A"}, {{"x", Value::Int(9)}});
  g.AddNode({"A"}, {{"y", Value::Int(1)}});
  EXPECT_EQ(g.CountNodePatterns(), 2u);
}

TEST(PropertyGraphTest, EdgePatternsIncludeEndpoints) {
  PropertyGraph g;
  NodeId a = g.AddNode({"A"}, {});
  NodeId b = g.AddNode({"B"}, {});
  // Same edge label/properties but different endpoint labels -> 2 patterns.
  ASSERT_TRUE(g.AddEdge(a, a, {"R"}, {}).ok());
  ASSERT_TRUE(g.AddEdge(a, b, {"R"}, {}).ok());
  EXPECT_EQ(g.CountEdgePatterns(), 2u);
}

TEST(PropertyGraphTest, FullBatchCoversEverything) {
  PropertyGraph g = MakeFigure1Graph();
  GraphBatch b = FullBatch(g);
  EXPECT_EQ(b.num_nodes(), g.num_nodes());
  EXPECT_EQ(b.num_edges(), g.num_edges());
}

TEST(PropertyGraphTest, SplitIntoBatchesPartitions) {
  PropertyGraph g;
  for (int i = 0; i < 17; ++i) g.AddNode({"A"}, {});
  NodeId first = 0;
  for (int i = 0; i < 11; ++i) {
    ASSERT_TRUE(g.AddEdge(first, first, {"R"}, {}).ok());
  }
  auto batches = SplitIntoBatches(g, 4);
  ASSERT_EQ(batches.size(), 4u);
  size_t nodes = 0, edges = 0;
  size_t prev_node_end = 0, prev_edge_end = 0;
  for (const auto& b : batches) {
    EXPECT_EQ(b.node_begin, prev_node_end);
    EXPECT_EQ(b.edge_begin, prev_edge_end);
    prev_node_end = b.node_end;
    prev_edge_end = b.edge_end;
    nodes += b.num_nodes();
    edges += b.num_edges();
  }
  EXPECT_EQ(nodes, 17u);
  EXPECT_EQ(edges, 11u);
}

TEST(PropertyGraphTest, SplitMoreBatchesThanNodes) {
  PropertyGraph g;
  g.AddNode({"A"}, {});
  g.AddNode({"A"}, {});
  auto batches = SplitIntoBatches(g, 10);
  EXPECT_LE(batches.size(), 2u);
}

// ---------- Figure 1 graph ----------

TEST(GraphBuilderTest, Figure1Shape) {
  PropertyGraph g = MakeFigure1Graph();
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 6u);
  // Example 2 lists 6 node patterns and 6 edge patterns.
  EXPECT_EQ(g.CountNodePatterns(), 6u);
  EXPECT_EQ(g.CountEdgePatterns(), 6u);
  // Alice is unlabeled.
  size_t unlabeled = 0;
  for (const auto& n : g.nodes()) unlabeled += n.labels.empty();
  EXPECT_EQ(unlabeled, 1u);
}

TEST(GraphStatsTest, Figure1Stats) {
  GraphStats s = ComputeGraphStats(MakeFigure1Graph(), "fig1");
  EXPECT_EQ(s.nodes, 7u);
  EXPECT_EQ(s.edges, 6u);
  EXPECT_EQ(s.node_types, 4u);
  EXPECT_EQ(s.edge_types, 4u);
  EXPECT_EQ(s.node_labels, 4u);
  EXPECT_EQ(s.edge_labels, 4u);
  std::string row = FormatStatsRow(s);
  EXPECT_NE(row.find("fig1"), std::string::npos);
  EXPECT_FALSE(FormatStatsHeader().empty());
}

// ---------- CSV I/O ----------

TEST(CsvIoTest, RoundTripPreservesStructure) {
  PropertyGraph g = MakeFigure1Graph();
  auto loaded = GraphFromCsv(NodesToCsv(g), EdgesToCsv(g));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(loaded->node(i).labels, g.node(i).labels);
    EXPECT_EQ(loaded->node(i).truth_type, g.node(i).truth_type);
    EXPECT_EQ(loaded->node(i).properties.size(), g.node(i).properties.size());
  }
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(loaded->edge(i).source, g.edge(i).source);
    EXPECT_EQ(loaded->edge(i).target, g.edge(i).target);
    EXPECT_EQ(loaded->edge(i).labels, g.edge(i).labels);
  }
}

TEST(CsvIoTest, ValuesSurviveRoundTrip) {
  PropertyGraph g;
  g.AddNode({"T"}, {{"i", Value::Int(5)},
                    {"d", Value::Double(1.5)},
                    {"b", Value::Bool(true)},
                    {"s", Value::String("hello, world")},
                    {"dt", Value::Date("2020-02-02")}});
  g.AddNode({"T"}, {});
  ASSERT_TRUE(g.AddEdge(0, 1, {"R"}, {}).ok());
  auto loaded = GraphFromCsv(NodesToCsv(g), EdgesToCsv(g));
  ASSERT_TRUE(loaded.ok());
  const auto& props = loaded->node(0).properties;
  EXPECT_EQ(props.at("i").AsInt(), 5);
  EXPECT_DOUBLE_EQ(props.at("d").AsDouble(), 1.5);
  EXPECT_TRUE(props.at("b").AsBool());
  EXPECT_EQ(props.at("s").AsString(), "hello, world");
  EXPECT_EQ(props.at("dt").type(), DataType::kDate);
}

TEST(CsvIoTest, BadHeaderRejected) {
  auto r = GraphFromCsv("bogus,header\n", "src,tgt,labels,truth\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvIoTest, WrongFieldCountRejected) {
  auto r = GraphFromCsv("id,labels,truth,x\n0,A,T\n",
                        "src,tgt,labels,truth\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvIoTest, EdgeToMissingNodeRejected) {
  auto r = GraphFromCsv("id,labels,truth\n0,A,T\n",
                        "src,tgt,labels,truth\n0,5,R,TR\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvIoTest, SaveAndLoadFiles) {
  PropertyGraph g = MakeFigure1Graph();
  std::string prefix = testing::TempDir() + "/pghive_graph";
  ASSERT_TRUE(SaveGraphCsv(g, prefix).ok());
  auto loaded = LoadGraphCsv(prefix);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
}

}  // namespace
}  // namespace pghive
