// pghive: the PG-HIVE command-line interface. All logic lives in
// src/cli/commands.h so it is unit-testable; this translation unit only
// maps Status to exit codes.

#include <iostream>

#include "cli/args.h"
#include "cli/commands.h"

int main(int argc, char** argv) {
  pghive::Args args = pghive::Args::Parse(argc, argv);
  pghive::Status status = pghive::RunCliCommand(args, std::cout);
  if (!status.ok()) {
    std::cerr << "pghive: " << status << "\n";
    switch (status.code()) {
      case pghive::StatusCode::kInvalidArgument:
        return 2;
      case pghive::StatusCode::kIoError:
        // Distinct code so wrappers can tell "corrupt/unwritable state"
        // (retry elsewhere, alert) from a plain failure.
        return 3;
      case pghive::StatusCode::kAlreadyExists:
        // A live process holds the state directory's LOCK: the caller can
        // wait and retry, unlike the failures above.
        return 4;
      default:
        return 1;
    }
  }
  return 0;
}
