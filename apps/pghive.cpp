// pghive: the PG-HIVE command-line interface. All logic lives in
// src/cli/commands.h so it is unit-testable; this translation unit only
// maps Status to exit codes.

#include <iostream>

#include "cli/args.h"
#include "cli/commands.h"

int main(int argc, char** argv) {
  pghive::Args args = pghive::Args::Parse(argc, argv);
  pghive::Status status = pghive::RunCliCommand(args, std::cout);
  if (!status.ok()) {
    std::cerr << "pghive: " << status << "\n";
    return status.code() == pghive::StatusCode::kInvalidArgument ? 2 : 1;
  }
  return 0;
}
